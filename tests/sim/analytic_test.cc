#include "src/sim/analytic.h"

#include <gtest/gtest.h>

#include "src/harness/synthetic_suite.h"
#include "src/sim/simulation.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

TEST(AnalyticTest, RequiresValidatedPlanAndCluster) {
  LogicalPlan raw;
  EXPECT_TRUE(EstimateLatencyAnalytically(raw, Cluster::M510(2))
                  .status()
                  .IsFailedPrecondition());
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(EstimateLatencyAnalytically(*plan, Cluster())
                  .status()
                  .IsInvalidArgument());
}

TEST(AnalyticTest, LatencyDominatedByWindowResidence) {
  auto plan = testing::LinearPlan(/*rate=*/5000.0, /*parallelism=*/4);
  ASSERT_TRUE(plan.ok());
  auto est = EstimateLatencyAnalytically(*plan, Cluster::M510(4));
  ASSERT_TRUE(est.ok());
  // 1s tumbling window: residence ~1.0s dominates at low utilization.
  EXPECT_GT(est->latency_s, 0.5);
  EXPECT_LT(est->latency_s, 2.0);
  EXPECT_FALSE(est->saturated);
  EXPECT_LT(est->max_utilization, 0.5);
}

TEST(AnalyticTest, SaturationDetectedAtOverload) {
  auto slow = testing::LinearPlan(/*rate=*/400000.0, /*parallelism=*/1);
  ASSERT_TRUE(slow.ok());
  auto est = EstimateLatencyAnalytically(*slow, Cluster::M510(4));
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->saturated);
  EXPECT_GT(est->max_utilization, 1.0);
  // Saturated plans predict multi-second latency.
  EXPECT_GT(est->latency_s, 2.0);
}

TEST(AnalyticTest, ParallelismReducesUtilization) {
  auto p1 = testing::LinearPlan(100000.0, 1);
  auto p8 = testing::LinearPlan(100000.0, 8);
  ASSERT_TRUE(p1.ok() && p8.ok());
  auto e1 = EstimateLatencyAnalytically(*p1, Cluster::M510(4));
  auto e8 = EstimateLatencyAnalytically(*p8, Cluster::M510(4));
  ASSERT_TRUE(e1.ok() && e8.ok());
  EXPECT_GT(e1->max_utilization, e8->max_utilization * 3);
}

TEST(AnalyticTest, FasterClusterLowersUtilization) {
  auto plan = testing::LinearPlan(100000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto m510 = EstimateLatencyAnalytically(*plan, Cluster::M510(4));
  auto epyc = EstimateLatencyAnalytically(*plan, Cluster::C6525(4));
  ASSERT_TRUE(m510.ok() && epyc.ok());
  EXPECT_GT(m510->max_utilization, epyc->max_utilization);
}

// The headline cross-check: analytic estimate and DES agree within a small
// factor across structures and regimes (they share no code path beyond the
// cardinality model).
class AnalyticVsSimulation
    : public ::testing::TestWithParam<SyntheticStructure> {};

TEST_P(AnalyticVsSimulation, AgreeWithinFactorThree) {
  CanonicalOptions copt;
  copt.event_rate = 30000.0;
  copt.parallelism = 4;
  auto plan = MakeCanonicalSynthetic(GetParam(), copt);
  ASSERT_TRUE(plan.ok());
  auto analytic = EstimateLatencyAnalytically(*plan, Cluster::M510(6));
  ASSERT_TRUE(analytic.ok());

  ExecutionOptions exec;
  exec.sim.duration_s = 3.0;
  exec.sim.warmup_s = 0.75;
  auto sim = ExecutePlan(*plan, Cluster::M510(6), exec);
  ASSERT_TRUE(sim.ok());

  const double ratio = analytic->latency_s / sim->median_latency_s;
  EXPECT_GT(ratio, 1.0 / 3.0) << "analytic=" << analytic->latency_s
                              << " sim=" << sim->median_latency_s;
  EXPECT_LT(ratio, 3.0) << "analytic=" << analytic->latency_s
                        << " sim=" << sim->median_latency_s;
}

INSTANTIATE_TEST_SUITE_P(
    Structures, AnalyticVsSimulation,
    ::testing::Values(SyntheticStructure::kLinear,
                      SyntheticStructure::kChain2Filters,
                      SyntheticStructure::kAggregation,
                      SyntheticStructure::kTwoWayJoin));

TEST(AnalyticTest, PerOpBreakdownCoversAllOperators) {
  auto plan = testing::TwoWayJoinPlan(5000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto est = EstimateLatencyAnalytically(*plan, Cluster::M510(4));
  ASSERT_TRUE(est.ok());
  ASSERT_EQ(est->per_op.size(), plan->NumOperators());
  auto j = plan->FindOperator("join");
  ASSERT_TRUE(j.ok());
  EXPECT_GT(est->per_op[*j].window_residence_s, 0.0);
  for (const AnalyticOpEstimate& o : est->per_op) {
    EXPECT_GE(o.utilization, 0.0);
    EXPECT_GE(o.queue_wait_s, 0.0);
  }
}

}  // namespace
}  // namespace pdsp
