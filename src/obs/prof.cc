#include "src/obs/prof.h"

#include <pthread.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <thread>
#include <utility>

#include "src/common/string_util.h"
#include "src/common/thread_annotations.h"

namespace pdsp {
namespace obs {
namespace prof {

namespace {

/// Sentinel folded-stack key for samples whose marker snapshot stayed torn
/// across all retries. Cannot collide with a real frame: kinds fit in 8
/// bits, so bit 63 is never set by PackFrame.
constexpr uint64_t kTornSentinel = ~0ULL;

double TimespecSeconds(const timespec& ts) {
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

// ---------------------------------------------------------------------------
// Name interning: ids are 1-based indices into a stable string table. The
// mutex is only taken when interning/looking up — never on the marker path,
// which carries pre-interned ids.

struct NameTable {
  Mutex mu;
  std::vector<std::string> names PDSP_GUARDED_BY(mu);
  std::map<std::string, uint32_t> ids PDSP_GUARDED_BY(mu);
};

NameTable& GlobalNames() {
  static NameTable* table = new NameTable();
  return *table;
}

// ---------------------------------------------------------------------------
// Thread registry. Entries are shared_ptrs so a sampler that copied the
// list keeps a dying thread's entry alive (and skips it via `alive`).

struct ThreadRegistry {
  Mutex mu;
  std::vector<std::shared_ptr<ThreadEntry>> threads PDSP_GUARDED_BY(mu);
};

ThreadRegistry& GlobalRegistry() {
  static ThreadRegistry* registry = new ThreadRegistry();
  return *registry;
}

thread_local ThreadEntry* t_entry = nullptr;

std::vector<std::shared_ptr<ThreadEntry>> RegisteredThreadsSnapshot() {
  ThreadRegistry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  return registry.threads;
}

std::shared_ptr<ThreadEntry> CurrentThreadEntryShared() {
  if (t_entry == nullptr) return nullptr;
  ThreadRegistry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  for (const auto& entry : registry.threads) {
    if (entry.get() == t_entry) return entry;
  }
  return nullptr;
}

std::string RenderFrame(uint64_t frame) {
  std::string name = LookupName(FrameNameOf(frame));
  if (name.empty()) name = "(anon)";
  return std::string(FrameKindName(FrameKindOf(frame))) + ":" + name;
}

std::string RenderStackKey(const std::vector<uint64_t>& frames) {
  if (frames.empty()) return "(unmarked)";
  if (frames.size() == 1 && frames[0] == kTornSentinel) return "(torn)";
  std::vector<std::string> parts;
  parts.reserve(frames.size());
  for (uint64_t frame : frames) parts.push_back(RenderFrame(frame));
  return Join(parts, ";");
}

/// Innermost operator frame's name, or "(none)".
std::string OperatorOfStack(const std::vector<uint64_t>& frames) {
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    if (*it == kTornSentinel) break;
    if (FrameKindOf(*it) == FrameKind::kOperator) {
      std::string name = LookupName(FrameNameOf(*it));
      return name.empty() ? "(anon)" : name;
    }
  }
  return "(none)";
}

/// Outermost phase frame's name, or "(none)".
std::string PhaseOfStack(const std::vector<uint64_t>& frames) {
  for (uint64_t frame : frames) {
    if (frame == kTornSentinel) break;
    if (FrameKindOf(frame) == FrameKind::kPhase) {
      std::string name = LookupName(FrameNameOf(frame));
      return name.empty() ? "(anon)" : name;
    }
  }
  return "(none)";
}

double NumField(const Json& json, const char* key) {
  const Json& v = json[key];
  return v.is_number() ? v.AsNumber() : 0.0;
}

int64_t IntField(const Json& json, const char* key) {
  const Json& v = json[key];
  return v.is_number() ? v.AsInt() : 0;
}

std::string StrField(const Json& json, const char* key) {
  const Json& v = json[key];
  return v.is_string() ? v.AsString() : "";
}

}  // namespace

const char* FrameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kPhase: return "phase";
    case FrameKind::kApp: return "app";
    case FrameKind::kOperator: return "op";
    case FrameKind::kKernel: return "kernel";
  }
  return "?";
}

uint32_t InternName(const std::string& name) {
  NameTable& table = GlobalNames();
  MutexLock lock(table.mu);
  auto it = table.ids.find(name);
  if (it != table.ids.end()) return it->second;
  table.names.push_back(name);
  const uint32_t id = static_cast<uint32_t>(table.names.size());  // 1-based
  table.ids.emplace(name, id);
  return id;
}

std::string LookupName(uint32_t id) {
  if (id == 0) return "";
  NameTable& table = GlobalNames();
  MutexLock lock(table.mu);
  if (id > table.names.size()) return "";
  return table.names[id - 1];
}

ThreadRegistration::ThreadRegistration(const std::string& name) {
  if (t_entry != nullptr) return;  // nested: the outer registration owns
  auto entry = std::make_shared<ThreadEntry>();
  entry->name = name;
  entry->clock_valid =
      pthread_getcpuclockid(pthread_self(), &entry->cpu_clock) == 0;
  {
    ThreadRegistry& registry = GlobalRegistry();
    MutexLock lock(registry.mu);
    registry.threads.push_back(entry);
  }
  t_entry = entry.get();
  entry_ = std::move(entry);
}

ThreadRegistration::~ThreadRegistration() {
  if (entry_ == nullptr) return;
  entry_->alive.store(false, std::memory_order_release);
  {
    ThreadRegistry& registry = GlobalRegistry();
    MutexLock lock(registry.mu);
    auto& threads = registry.threads;
    threads.erase(std::remove(threads.begin(), threads.end(), entry_),
                  threads.end());
  }
  t_entry = nullptr;
}

ThreadEntry* CurrentThreadEntry() { return t_entry; }

namespace detail {
std::atomic<int> active_profilers{0};
}  // namespace detail

ProfScope::ProfScope(FrameKind kind, const char* name)
    : ProfScope(kind, ProfilingActive() && name != nullptr && *name != '\0'
                          ? InternName(name)
                          : 0u) {}

ProfScope::ProfScope(FrameKind kind, const std::string& name)
    : ProfScope(kind, ProfilingActive() && !name.empty() ? InternName(name)
                                                         : 0u) {}

// ---------------------------------------------------------------------------
// Profiler

struct Profiler::Impl {
  explicit Impl(const ProfOptions& opts) : options(opts) {}

  ProfOptions options;
  double hz = 0.0;
  bool running = false;
  bool started_gate = false;  // we incremented active_profilers
  std::chrono::steady_clock::time_point start_time{};

  Mutex mu;
  std::condition_variable_any cv;
  bool stop_requested PDSP_GUARDED_BY(mu) = false;
  std::thread sampler;

  /// Only sampled thread when !options.all_threads.
  std::shared_ptr<ThreadEntry> only;

  // --- sampler-thread-private state (read by Stop() after join) ---
  struct PerThread {
    std::shared_ptr<ThreadEntry> keep;
    double last_cpu_s = 0.0;
    int64_t samples = 0;
    double cpu_s = 0.0;
  };
  struct Fold {
    int64_t samples = 0;
    double cpu_s = 0.0;
  };
  std::map<const ThreadEntry*, PerThread> per_thread;
  std::map<std::vector<uint64_t>, Fold> folds;
  int64_t samples = 0;
  int64_t dropped = 0;
  double sampler_cpu_s = 0.0;
  double duration_s = 0.0;

  void SampleOnce(bool prime_only);
  void Loop();
};

void Profiler::Impl::SampleOnce(bool prime_only) {
  std::vector<std::shared_ptr<ThreadEntry>> targets;
  if (only != nullptr) {
    targets.push_back(only);
  } else {
    targets = RegisteredThreadsSnapshot();
  }
  for (const auto& entry : targets) {
    if (!entry->clock_valid) continue;
    if (!entry->alive.load(std::memory_order_acquire)) continue;
    timespec ts{};
    // The clock of a thread that exited between the alive check and here
    // reads as an error — skip; its entry drops off the registry snapshot
    // next tick.
    if (clock_gettime(entry->cpu_clock, &ts) != 0) continue;
    const double cpu = TimespecSeconds(ts);
    auto [it, inserted] = per_thread.try_emplace(entry.get());
    PerThread& pt = it->second;
    if (inserted) {
      // First sight (at Start for pre-registered threads, mid-run for ones
      // registered later): baseline only, nothing to attribute yet.
      pt.keep = entry;
      pt.last_cpu_s = cpu;
      continue;
    }
    if (prime_only) {
      pt.last_cpu_s = cpu;
      continue;
    }
    const double delta = cpu - pt.last_cpu_s;
    pt.last_cpu_s = cpu;
    if (delta <= 0.0) continue;
    ++samples;
    ++pt.samples;
    pt.cpu_s += delta;
    uint64_t frames[kMaxMarkerDepth];
    const int n = entry->stack.Snapshot(frames);
    std::vector<uint64_t> key;
    if (n < 0) {
      ++dropped;
      key.assign(1, kTornSentinel);
    } else {
      key.assign(frames, frames + n);
    }
    Fold& fold = folds[std::move(key)];
    ++fold.samples;
    fold.cpu_s += delta;
  }
}

void Profiler::Impl::Loop() {
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / hz));
  auto next = std::chrono::steady_clock::now() + interval;
  for (;;) {
    bool stopping = false;
    {
      MutexLock lock(mu);
      // Timed wait on the annotated Mutex through its BasicLockable
      // surface (same pattern as SnapshotSampler::Loop) so the guarded
      // read of stop_requested stays statically checked.
      while (!stop_requested && std::chrono::steady_clock::now() < next) {
        cv.wait_until(mu, next);
      }
      stopping = stop_requested;
    }
    if (stopping) break;
    SampleOnce(/*prime_only=*/false);
    next += interval;
    const auto now = std::chrono::steady_clock::now();
    if (now > next + interval) next = now + interval;  // no catch-up burst
  }
  // One final sample so a run shorter than a tick still yields data: the
  // delta since the Start() baseline covers everything that happened.
  SampleOnce(/*prime_only=*/false);
  timespec self{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &self) == 0) {
    sampler_cpu_s = TimespecSeconds(self);
  }
}

Profiler::Profiler(const ProfOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

Profiler::~Profiler() {
  if (impl_ != nullptr && impl_->running) Stop();
}

bool Profiler::running() const { return impl_->running; }

Status Profiler::Start() {
  Impl& impl = *impl_;
  if (impl.running) {
    return Status::FailedPrecondition("profiler already running");
  }
  impl.hz = std::min(2000.0, std::max(1.0, impl.options.hz));
  if (!impl.options.all_threads) {
    impl.only = CurrentThreadEntryShared();
    if (impl.only == nullptr) {
      return Status::FailedPrecondition(
          "calling thread is not registered; create a "
          "prof::ThreadRegistration first or set all_threads");
    }
  }
  {
    MutexLock lock(impl.mu);
    impl.stop_requested = false;
  }
  impl.per_thread.clear();
  impl.folds.clear();
  impl.samples = 0;
  impl.dropped = 0;
  impl.sampler_cpu_s = 0.0;
  impl.start_time = std::chrono::steady_clock::now();
  // Baseline pass from the starting thread (the sampler does not exist
  // yet, so Impl state is still single-threaded here).
  impl.SampleOnce(/*prime_only=*/true);
  detail::active_profilers.fetch_add(1, std::memory_order_relaxed);
  impl.started_gate = true;
  impl.sampler = std::thread([this] { impl_->Loop(); });
  impl.running = true;
  return Status::OK();
}

CpuProfile Profiler::Stop() {
  Impl& impl = *impl_;
  CpuProfile profile;
  if (!impl.running) return profile;
  {
    MutexLock lock(impl.mu);
    impl.stop_requested = true;
  }
  impl.cv.notify_all();
  if (impl.sampler.joinable()) impl.sampler.join();
  impl.running = false;
  if (impl.started_gate) {
    detail::active_profilers.fetch_sub(1, std::memory_order_relaxed);
    impl.started_gate = false;
  }
  impl.duration_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - impl.start_time)
                        .count();

  profile.hz = impl.hz;
  profile.duration_s = impl.duration_s;
  profile.samples = impl.samples;
  profile.dropped = impl.dropped;
  profile.sampler_cpu_s = impl.sampler_cpu_s;

  // Folded stacks: merge by rendered key (distinct frame vectors render to
  // distinct strings unless names collide, in which case merging is right).
  std::map<std::string, Impl::Fold> by_stack;
  std::map<std::string, Impl::Fold> by_operator;
  std::map<std::string, Impl::Fold> by_phase;
  for (const auto& [frames, fold] : impl.folds) {
    profile.total_cpu_s += fold.cpu_s;
    auto& stack = by_stack[RenderStackKey(frames)];
    stack.samples += fold.samples;
    stack.cpu_s += fold.cpu_s;
    auto& op = by_operator[OperatorOfStack(frames)];
    op.samples += fold.samples;
    op.cpu_s += fold.cpu_s;
    auto& phase = by_phase[PhaseOfStack(frames)];
    phase.samples += fold.samples;
    phase.cpu_s += fold.cpu_s;
  }
  for (const auto& [stack, fold] : by_stack) {
    profile.folded.push_back({stack, fold.samples, fold.cpu_s});
  }
  auto to_totals = [](const std::map<std::string, Impl::Fold>& m) {
    std::vector<FrameTotal> totals;
    totals.reserve(m.size());
    for (const auto& [name, fold] : m) {
      totals.push_back({name, fold.samples, fold.cpu_s});
    }
    std::sort(totals.begin(), totals.end(),
              [](const FrameTotal& a, const FrameTotal& b) {
                if (a.cpu_s != b.cpu_s) return a.cpu_s > b.cpu_s;
                return a.name < b.name;
              });
    return totals;
  };
  profile.operators = to_totals(by_operator);
  profile.phases = to_totals(by_phase);

  int64_t truncated = 0;
  for (const auto& [entry_ptr, pt] : impl.per_thread) {
    profile.threads.push_back({pt.keep->name, pt.samples, pt.cpu_s});
    truncated += pt.keep->stack.truncated();
  }
  std::sort(profile.threads.begin(), profile.threads.end(),
            [](const ThreadCpu& a, const ThreadCpu& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.cpu_s > b.cpu_s;
            });
  profile.truncated = truncated;
  impl.only.reset();
  return profile;
}

// ---------------------------------------------------------------------------
// CpuProfile JSON

Json CpuProfile::ToJson() const {
  Json j = Json::Object();
  j.Set("schema_version", Json::Int(schema_version));
  j.Set("hz", Json::Number(hz));
  j.Set("duration_s", Json::Number(duration_s));
  j.Set("total_cpu_s", Json::Number(total_cpu_s));
  j.Set("samples", Json::Int(samples));
  j.Set("dropped", Json::Int(dropped));
  j.Set("truncated", Json::Int(truncated));
  j.Set("sampler_cpu_s", Json::Number(sampler_cpu_s));
  Json folds = Json::Array();
  for (const FoldedSample& f : folded) {
    Json e = Json::Object();
    e.Set("stack", Json::Str(f.stack));
    e.Set("samples", Json::Int(f.samples));
    e.Set("cpu_s", Json::Number(f.cpu_s));
    folds.Append(std::move(e));
  }
  j.Set("folded", std::move(folds));
  auto totals_json = [](const std::vector<FrameTotal>& totals) {
    Json arr = Json::Array();
    for (const FrameTotal& t : totals) {
      Json e = Json::Object();
      e.Set("name", Json::Str(t.name));
      e.Set("samples", Json::Int(t.samples));
      e.Set("cpu_s", Json::Number(t.cpu_s));
      arr.Append(std::move(e));
    }
    return arr;
  };
  j.Set("operators", totals_json(operators));
  j.Set("phases", totals_json(phases));
  Json threads_json = Json::Array();
  for (const ThreadCpu& t : threads) {
    Json e = Json::Object();
    e.Set("name", Json::Str(t.name));
    e.Set("samples", Json::Int(t.samples));
    e.Set("cpu_s", Json::Number(t.cpu_s));
    threads_json.Append(std::move(e));
  }
  j.Set("threads", std::move(threads_json));
  return j;
}

Result<CpuProfile> CpuProfile::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("profile document is not an object");
  }
  const int64_t version = IntField(json, "schema_version");
  if (version != kProfileSchemaVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported profile schema_version %lld",
                  static_cast<long long>(version)));
  }
  CpuProfile profile;
  profile.hz = NumField(json, "hz");
  profile.duration_s = NumField(json, "duration_s");
  profile.total_cpu_s = NumField(json, "total_cpu_s");
  profile.samples = IntField(json, "samples");
  profile.dropped = IntField(json, "dropped");
  profile.truncated = IntField(json, "truncated");
  profile.sampler_cpu_s = NumField(json, "sampler_cpu_s");
  const Json& folds = json["folded"];
  if (folds.is_array()) {
    for (size_t i = 0; i < folds.size(); ++i) {
      const Json& e = folds.at(i);
      profile.folded.push_back(
          {StrField(e, "stack"), IntField(e, "samples"), NumField(e, "cpu_s")});
    }
  }
  auto read_totals = [&json](const char* key) {
    std::vector<FrameTotal> totals;
    const Json& arr = json[key];
    if (arr.is_array()) {
      for (size_t i = 0; i < arr.size(); ++i) {
        const Json& e = arr.at(i);
        totals.push_back({StrField(e, "name"), IntField(e, "samples"),
                          NumField(e, "cpu_s")});
      }
    }
    return totals;
  };
  profile.operators = read_totals("operators");
  profile.phases = read_totals("phases");
  const Json& threads = json["threads"];
  if (threads.is_array()) {
    for (size_t i = 0; i < threads.size(); ++i) {
      const Json& e = threads.at(i);
      profile.threads.push_back(
          {StrField(e, "name"), IntField(e, "samples"), NumField(e, "cpu_s")});
    }
  }
  return profile;
}

}  // namespace prof
}  // namespace obs
}  // namespace pdsp
