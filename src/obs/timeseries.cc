#include "src/obs/timeseries.h"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "src/common/file_util.h"
#include "src/common/string_util.h"

namespace pdsp {
namespace obs {

namespace {

/// CSV cell for a sampled double: non-finite samples (a gauge that divided
/// by a zero interval, an unset watermark) serialize as an *empty* cell —
/// "nan"/"inf" literals break strict CSV parsers and the SVG charts.
std::string CsvCell(double v, const char* fmt) {
  if (!std::isfinite(v)) return "";
  return StrFormat(fmt, v);
}

/// Inverse of CsvCell: an empty cell parses back to quiet NaN.
double ParseCell(const std::string& cell) {
  if (cell.empty()) return std::numeric_limits<double>::quiet_NaN();
  return std::strtod(cell.c_str(), nullptr);
}

}  // namespace

const std::vector<std::string>& TimeSeries::Columns() {
  static const std::vector<std::string> kColumns = {
      "time_s",      "task",        "op",
      "instance",    "queue_tuples", "utilization",
      "in_rate_tps", "out_rate_tps", "watermark_lag_s",
      "in_flight_tuples", "backpressure",
  };
  return kColumns;
}

std::vector<double> TimeSeries::SampleTimes() const {
  std::vector<double> times;
  for (const TimeSeriesRow& row : rows_) {
    if (times.empty() || times.back() != row.time_s) {
      times.push_back(row.time_s);
    }
  }
  return times;
}

std::string TimeSeries::ToCsv() const {
  std::string out = Join(Columns(), ",") + "\n";
  for (const TimeSeriesRow& row : rows_) {
    out += CsvCell(row.time_s, "%.6f") +
           StrFormat(",%d,%s,%d,%lld,", row.task, row.op.c_str(),
                     row.instance, static_cast<long long>(row.queue_tuples)) +
           CsvCell(row.utilization, "%.4f") + "," +
           CsvCell(row.in_rate_tps, "%.1f") + "," +
           CsvCell(row.out_rate_tps, "%.1f") + "," +
           CsvCell(row.watermark_lag_s, "%.6f") +
           StrFormat(",%lld,%d\n",
                     static_cast<long long>(row.in_flight_tuples),
                     row.backpressure ? 1 : 0);
  }
  return out;
}

Result<TimeSeries> TimeSeries::FromCsv(const std::string& csv) {
  const std::vector<std::string> lines = Split(csv, '\n');
  if (lines.empty() || Trim(lines[0]) != Join(Columns(), ",")) {
    return Status::InvalidArgument("timeseries CSV: bad or missing header");
  }
  TimeSeries series;
  for (size_t n = 1; n < lines.size(); ++n) {
    const std::string line = Trim(lines[n]);
    if (line.empty()) continue;
    const std::vector<std::string> cells = Split(line, ',');
    if (cells.size() != Columns().size()) {
      return Status::InvalidArgument(
          StrFormat("timeseries CSV line %zu: %zu cells, expected %zu", n + 1,
                    cells.size(), Columns().size()));
    }
    TimeSeriesRow row;
    row.time_s = ParseCell(cells[0]);
    row.task = std::atoi(cells[1].c_str());
    row.op = cells[2];
    row.instance = std::atoi(cells[3].c_str());
    row.queue_tuples = std::atoll(cells[4].c_str());
    row.utilization = ParseCell(cells[5]);
    row.in_rate_tps = ParseCell(cells[6]);
    row.out_rate_tps = ParseCell(cells[7]);
    row.watermark_lag_s = ParseCell(cells[8]);
    row.in_flight_tuples = std::atoll(cells[9].c_str());
    row.backpressure = cells[10] == "1";
    series.Append(std::move(row));
  }
  return series;
}

Status TimeSeries::WriteCsv(const std::string& path) const {
  return WriteTextFileAtomic(path, ToCsv());
}

}  // namespace obs
}  // namespace pdsp
