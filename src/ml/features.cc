#include "src/ml/features.h"

#include <algorithm>
#include <cmath>

#include "src/query/cardinality.h"
#include "src/sim/cost_model.h"

namespace pdsp {

namespace {

double Log1p(double x) { return std::log1p(std::max(0.0, x)); }

}  // namespace

Result<Vector> EncodeFlat(const LogicalPlan& plan, const Cluster& cluster) {
  if (!plan.validated()) {
    return Status::FailedPrecondition("plan must be validated");
  }
  PDSP_ASSIGN_OR_RETURN(auto cards, CardinalityModel::Compute(plan));
  const CostModel costs;

  Vector f(kFlatFeatureDim, 0.0);
  double total_rate = 0.0;
  for (const SourceBinding& src : plan.sources()) total_rate += src.arrival.rate;

  int filters = 0, maps = 0, flatmaps = 0, aggs = 0, joins = 0, udos = 0;
  int sources = 0, sliding = 0, count_windows = 0, stateful = 0, hashed = 0;
  double sel_product = 1.0, expansion = 0.0, udo_cost = 0.0;
  double window_dur_sum = 0.0, overlap_sum = 0.0;
  int window_count = 0;
  int total_par = 0, max_par = 0;
  int min_par = 1 << 30;
  double keys_sum = 0.0, rate_max = 0.0, rate_sum = 0.0, bytes_sum = 0.0;
  double per_inst_rate_max = 0.0, util_max = 0.0;

  const size_t n = plan.NumOperators();
  for (size_t i = 0; i < n; ++i) {
    const auto id = static_cast<LogicalPlan::OpId>(i);
    const OperatorDescriptor& op = plan.op(id);
    const OpCardinality& c = cards[i];
    switch (op.type) {
      case OperatorType::kSource:
        ++sources;
        break;
      case OperatorType::kFilter:
        ++filters;
        sel_product *= std::clamp(
            op.selectivity_hint >= 0.0 ? op.selectivity_hint : 0.5, 0.0, 1.0);
        break;
      case OperatorType::kMap:
        ++maps;
        break;
      case OperatorType::kFlatMap:
        ++flatmaps;
        expansion += op.flatmap_fanout;
        break;
      case OperatorType::kWindowAggregate:
        ++aggs;
        break;
      case OperatorType::kWindowJoin:
        ++joins;
        break;
      case OperatorType::kUdo:
        ++udos;
        expansion += op.udo_selectivity;
        udo_cost += op.udo_cost_factor;
        stateful += op.udo_stateful ? 1 : 0;
        break;
      case OperatorType::kSink:
        break;
    }
    if (op.type == OperatorType::kWindowAggregate ||
        op.type == OperatorType::kWindowJoin) {
      ++window_count;
      window_dur_sum += op.window.policy == WindowPolicy::kTime
                            ? op.window.DurationSeconds()
                            : 0.0;
      overlap_sum += op.window.OverlapFactor();
      sliding += op.window.type == WindowType::kSliding;
      count_windows += op.window.policy == WindowPolicy::kCount;
    }
    if (op.input_partitioning == Partitioning::kHash) ++hashed;
    total_par += op.parallelism;
    max_par = std::max(max_par, op.parallelism);
    if (op.type != OperatorType::kSink) {
      min_par = std::min(min_par, op.parallelism);
    }
    keys_sum += c.distinct_keys;
    rate_max = std::max(rate_max, c.input_rate);
    rate_sum += c.input_rate;
    bytes_sum += c.tuple_bytes;
    const double rate_for_cost =
        op.type == OperatorType::kSource ? c.output_rate : c.input_rate;
    const double per_inst = rate_for_cost / op.parallelism;
    per_inst_rate_max = std::max(per_inst_rate_max, per_inst);
    util_max = std::max(
        util_max, per_inst * costs.InputTupleCost(op) /
                      std::max(0.1, cluster.MeanSpeed()));
  }
  if (min_par == (1 << 30)) min_par = 1;

  size_t k = 0;
  f[k++] = Log1p(total_rate);
  f[k++] = static_cast<double>(n);
  f[k++] = static_cast<double>(plan.Depth());
  f[k++] = sources;
  f[k++] = filters;
  f[k++] = maps;
  f[k++] = flatmaps;
  f[k++] = aggs;
  f[k++] = joins;
  f[k++] = udos;
  f[k++] = Log1p(total_par);
  f[k++] = static_cast<double>(total_par) / static_cast<double>(n);
  f[k++] = max_par;
  f[k++] = min_par;
  f[k++] = sel_product;
  f[k++] = expansion;
  f[k++] = udo_cost;
  f[k++] = stateful;
  f[k++] = window_count > 0 ? window_dur_sum / window_count : 0.0;
  f[k++] = window_count > 0 ? overlap_sum / window_count : 0.0;
  f[k++] = sliding;
  f[k++] = count_windows;
  f[k++] = Log1p(keys_sum);
  f[k++] = Log1p(rate_max);
  f[k++] = Log1p(rate_sum);
  f[k++] = Log1p(cards[plan.SinkId()].output_rate);
  f[k++] = bytes_sum / static_cast<double>(n) / 100.0;
  f[k++] = static_cast<double>(cluster.NumNodes());
  f[k++] = static_cast<double>(cluster.TotalCores()) / 10.0;
  f[k++] = cluster.MeanSpeed();
  f[k++] = cluster.IsHeterogeneous() ? 1.0 : 0.0;
  f[k++] = Log1p(per_inst_rate_max);
  f[k++] = util_max;
  f[k++] = hashed;
  f[k++] = 1.0;  // bias
  return f;
}

Result<GraphSample> EncodeGraph(const LogicalPlan& plan,
                                const Cluster& cluster) {
  if (!plan.validated()) {
    return Status::FailedPrecondition("plan must be validated");
  }
  PDSP_ASSIGN_OR_RETURN(auto cards, CardinalityModel::Compute(plan));
  const CostModel costs;

  GraphSample g;
  g.sink = plan.SinkId();
  g.edges = plan.edges();
  const size_t n = plan.NumOperators();
  g.node_features.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto id = static_cast<LogicalPlan::OpId>(i);
    const OperatorDescriptor& op = plan.op(id);
    const OpCardinality& c = cards[i];
    Vector x(kNodeFeatureDim, 0.0);
    size_t k = 0;
    // One-hot operator type (8 kinds).
    x[k + static_cast<size_t>(op.type)] = 1.0;
    k += 8;
    x[k++] = Log1p(op.parallelism);
    x[k++] = Log1p(c.input_rate);
    x[k++] = Log1p(c.output_rate);
    x[k++] = std::clamp(c.selectivity, 0.0, 8.0);
    const bool windowed = op.type == OperatorType::kWindowAggregate ||
                          op.type == OperatorType::kWindowJoin;
    x[k++] = windowed && op.window.policy == WindowPolicy::kTime
                 ? op.window.DurationSeconds()
                 : 0.0;
    x[k++] = windowed ? op.window.OverlapFactor() : 0.0;
    x[k++] = Log1p(c.distinct_keys);
    x[k++] = c.tuple_bytes / 100.0;
    x[k++] = op.type == OperatorType::kUdo ? op.udo_cost_factor : 0.0;
    x[k++] = op.udo_stateful ? 1.0 : 0.0;
    const double rate_for_cost =
        op.type == OperatorType::kSource ? c.output_rate : c.input_rate;
    x[k++] = rate_for_cost / op.parallelism * costs.InputTupleCost(op) /
             std::max(0.1, cluster.MeanSpeed());
    x[k++] = cluster.MeanSpeed();
    x[k++] = static_cast<double>(cluster.TotalCores()) / 100.0;
    x[k++] = cluster.IsHeterogeneous() ? 1.0 : 0.0;
    g.node_features.push_back(std::move(x));
  }
  return g;
}

Result<PlanSample> EncodeSample(const LogicalPlan& plan,
                                const Cluster& cluster, double latency_s,
                                int structure_tag) {
  if (!(latency_s > 0.0)) {
    return Status::InvalidArgument("latency label must be positive");
  }
  PlanSample sample;
  PDSP_ASSIGN_OR_RETURN(sample.flat, EncodeFlat(plan, cluster));
  PDSP_ASSIGN_OR_RETURN(sample.graph, EncodeGraph(plan, cluster));
  sample.latency_s = latency_s;
  sample.structure_tag = structure_tag;
  return sample;
}

}  // namespace pdsp
