#include "src/workload/query_generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/string_util.h"
#include "src/data/arrival.h"
#include "src/query/selectivity.h"

namespace pdsp {

const char* SyntheticStructureToString(SyntheticStructure s) {
  switch (s) {
    case SyntheticStructure::kLinear:
      return "linear";
    case SyntheticStructure::kChain2Filters:
      return "chain2";
    case SyntheticStructure::kChain3Filters:
      return "chain3";
    case SyntheticStructure::kAggregation:
      return "aggregation";
    case SyntheticStructure::kFlatMapChain:
      return "flatmap_chain";
    case SyntheticStructure::kTwoWayJoin:
      return "join2";
    case SyntheticStructure::kThreeWayJoin:
      return "join3";
    case SyntheticStructure::kFourWayJoin:
      return "join4";
    case SyntheticStructure::kFilterJoinAgg:
      return "filter_join_agg";
  }
  return "?";
}

const std::vector<SyntheticStructure>& AllSyntheticStructures() {
  static const std::vector<SyntheticStructure> kAll = {
      SyntheticStructure::kLinear,        SyntheticStructure::kChain2Filters,
      SyntheticStructure::kChain3Filters, SyntheticStructure::kAggregation,
      SyntheticStructure::kFlatMapChain,  SyntheticStructure::kTwoWayJoin,
      SyntheticStructure::kThreeWayJoin,  SyntheticStructure::kFourWayJoin,
      SyntheticStructure::kFilterJoinAgg,
  };
  return kAll;
}

StreamSpec QueryGenerator::MakeStream(int64_t key_cardinality,
                                      double max_skew) {
  StreamSpec spec;
  Field key{"key", DataType::kInt};
  (void)spec.schema.AddField(key);
  FieldGeneratorSpec key_gen;
  key_gen.dist = FieldDistribution::kZipfKey;
  key_gen.cardinality = key_cardinality;
  key_gen.zipf_s = rng_.Uniform(0.0, max_skew);
  spec.specs.push_back(key_gen);

  const int values = static_cast<int>(rng_.UniformInt(
      options_.min_value_fields, options_.max_value_fields));
  for (int i = 0; i < values; ++i) {
    Field f{StrFormat("v%d", i), DataType::kDouble};
    (void)spec.schema.AddField(f);
    FieldGeneratorSpec gen;
    gen.dist = rng_.Bernoulli(0.5) ? FieldDistribution::kUniformDouble
                                   : FieldDistribution::kNormalDouble;
    gen.min = 0.0;
    gen.max = rng_.Uniform(10.0, 10000.0);
    spec.specs.push_back(gen);
  }
  return spec;
}

ArrivalProcess::Options QueryGenerator::MakeArrival() {
  ArrivalProcess::Options arr;
  arr.kind = ArrivalKind::kPoisson;
  if (options_.fixed_event_rate > 0.0) {
    arr.rate = options_.fixed_event_rate;
  } else {
    const auto& rates = StandardEventRates();
    double rate;
    do {
      rate = rng_.Choice(rates);
    } while (rate > options_.rate_cap || rate < options_.rate_floor);
    arr.rate = rate;
  }
  return arr;
}

WindowSpec QueryGenerator::MakeWindow() {
  WindowSpec w;
  w.type = rng_.Bernoulli(options_.sliding_probability)
               ? WindowType::kSliding
               : WindowType::kTumbling;
  w.policy = rng_.Bernoulli(options_.count_policy_probability)
                 ? WindowPolicy::kCount
                 : WindowPolicy::kTime;
  w.duration_ms = rng_.Choice(options_.window_durations_ms);
  w.length_tuples = rng_.Choice(options_.window_lengths);
  w.slide_ratio = rng_.Choice(options_.slide_ratios);
  return w;
}

AggregateFn QueryGenerator::MakeAggregateFn() {
  static const std::vector<AggregateFn> kFns = {
      AggregateFn::kMin, AggregateFn::kMax, AggregateFn::kAvg,
      AggregateFn::kMean, AggregateFn::kSum};
  return rng_.Choice(kFns);
}

PlanBuilder::OpId QueryGenerator::AddFilter(
    PlanBuilder* b, PlanBuilder::OpId input, const StreamSpec& stream,
    const std::string& name,
    std::map<size_t, std::pair<double, double>>* cdf_intervals) {
  // Filter on a random numeric value field (field 0 is the key).
  const size_t field = stream.specs.size() == 1
                           ? 0
                           : static_cast<size_t>(rng_.UniformInt(
                                 1, static_cast<int64_t>(
                                        stream.specs.size()) - 1));
  auto [it, inserted] =
      cdf_intervals->try_emplace(field, std::make_pair(0.0, 1.0));
  auto& [lo, hi] = it->second;

  // Conditional target: the fraction of currently surviving tuples to keep.
  const double target = rng_.Uniform(options_.min_filter_selectivity,
                                     options_.max_filter_selectivity);
  const bool keep_lower = rng_.Bernoulli(0.5);
  // Cut point in marginal-CDF space.
  const double cut = keep_lower ? lo + target * (hi - lo)
                                : hi - target * (hi - lo);
  const FilterOp op = keep_lower
                          ? (rng_.Bernoulli(0.5) ? FilterOp::kLt
                                                 : FilterOp::kLe)
                          : (rng_.Bernoulli(0.5) ? FilterOp::kGt
                                                 : FilterOp::kGe);
  auto literal =
      LiteralForSelectivity(stream.specs[field], FilterOp::kLe, cut, &rng_);
  Value lit = literal.ok() ? *literal : Value(0.0);
  if (keep_lower) {
    hi = cut;
  } else {
    lo = cut;
  }
  auto id = b->Filter(name, input, field, op, std::move(lit),
                      options_.default_parallelism);
  b->WithSelectivityHint(id, target);
  return id;
}

int64_t QueryGenerator::JoinKeyCardinality(double rate,
                                           const WindowSpec& window) const {
  // Join outputs per probe ~ buffered_tuples_per_key; keeping the key space
  // proportional to the larger of (window contents, one second of arrivals)
  // keeps the expansion factor O(1) regardless of rate *and* policy — joins
  // on IDs, as real workloads do. Without the rate term, count-policy
  // windows at high rates would pack many tuples per key and each cascade
  // stage would multiply the stream (join3 explodes combinatorially).
  const double contents = window.policy == WindowPolicy::kTime
                              ? rate * window.DurationSeconds()
                              : static_cast<double>(window.length_tuples);
  const double effective = std::max(contents, rate);
  return std::clamp<int64_t>(static_cast<int64_t>(effective * 4.0),
                             options_.min_keys, 8'000'000);
}

Result<LogicalPlan> QueryGenerator::Generate(SyntheticStructure structure) {
  ++name_counter_;
  switch (structure) {
    case SyntheticStructure::kLinear:
    case SyntheticStructure::kChain2Filters:
    case SyntheticStructure::kChain3Filters:
    case SyntheticStructure::kAggregation:
    case SyntheticStructure::kFlatMapChain: {
      const int filters =
          structure == SyntheticStructure::kLinear          ? 1
          : structure == SyntheticStructure::kChain2Filters ? 2
          : structure == SyntheticStructure::kChain3Filters ? 3
                                                            : 0;
      PlanBuilder b;
      const int64_t keys = rng_.UniformInt(options_.min_keys,
                                           options_.max_keys);
      StreamSpec stream = MakeStream(keys);
      auto arrival = MakeArrival();
      auto cur = b.Source("src", stream, arrival,
                          options_.default_parallelism);
      std::map<size_t, std::pair<double, double>> intervals;
      if (structure == SyntheticStructure::kFlatMapChain) {
        cur = b.FlatMap("flatmap", cur, rng_.Uniform(1.0, 3.0),
                        options_.default_parallelism);
      }
      for (int i = 0; i < filters; ++i) {
        cur = AddFilter(&b, cur, stream, StrFormat("filter%d", i + 1),
                        &intervals);
      }
      if (structure == SyntheticStructure::kFlatMapChain) {
        cur = AddFilter(&b, cur, stream, "filter1", &intervals);
      }
      const WindowSpec win = MakeWindow();
      const size_t agg_field =
          stream.specs.size() > 1
              ? static_cast<size_t>(rng_.UniformInt(
                    1, static_cast<int64_t>(stream.specs.size()) - 1))
              : 0;
      cur = b.WindowAggregate("agg", cur, win, MakeAggregateFn(), agg_field,
                              /*key_field=*/0, options_.default_parallelism);
      b.Sink("sink", cur);
      PDSP_ASSIGN_OR_RETURN(LogicalPlan plan, b.Build());
      PDSP_RETURN_NOT_OK(AnnotateFilterSelectivities(&plan));
      return plan;
    }
    case SyntheticStructure::kTwoWayJoin:
      return MakeJoinPlan(2, /*with_agg=*/false);
    case SyntheticStructure::kThreeWayJoin:
      return MakeJoinPlan(3, /*with_agg=*/false);
    case SyntheticStructure::kFourWayJoin:
      return MakeJoinPlan(4, /*with_agg=*/false);
    case SyntheticStructure::kFilterJoinAgg:
      return MakeJoinPlan(2, /*with_agg=*/true);
  }
  return Status::InvalidArgument("unknown structure");
}

Result<LogicalPlan> QueryGenerator::MakeJoinPlan(int num_sources,
                                                 bool with_agg) {
  PlanBuilder b;
  const auto arrival = MakeArrival();
  const WindowSpec join_win = MakeWindow();
  const int64_t keys = JoinKeyCardinality(arrival.rate, join_win);

  std::vector<PlanBuilder::OpId> branches;
  std::vector<StreamSpec> streams;
  for (int i = 0; i < num_sources; ++i) {
    // Joins use mild skew: Sum p_k^2 stays O(1/n), so per-probe match counts
    // (and thus join output rates) stay bounded as event rates grow.
    StreamSpec stream = MakeStream(keys, /*max_skew=*/0.5);
    auto src = b.Source(StrFormat("src%d", i + 1), stream, arrival,
                        options_.default_parallelism);
    std::map<size_t, std::pair<double, double>> intervals;
    auto f = AddFilter(&b, src, stream, StrFormat("filter%d", i + 1),
                       &intervals);
    branches.push_back(f);
    streams.push_back(std::move(stream));
  }

  // Cascade: join((join(s1,s2), s3), ...). The left side's key column stays
  // at index 0 through the join output schema (l_key first).
  auto left = branches[0];
  for (int i = 1; i < num_sources; ++i) {
    left = b.WindowJoin(StrFormat("join%d", i), left, branches[i],
                        /*left_key=*/0, /*right_key=*/0, join_win,
                        options_.default_parallelism);
  }

  if (with_agg) {
    // Aggregate the right stream's value column (l-side width fields then
    // r_key, r_v0 ...): r_v0 sits right after the r_key column.
    const size_t left_width = streams[0].schema.NumFields();
    const size_t agg_field = left_width + 1;
    left = b.WindowAggregate("agg", left, MakeWindow(), MakeAggregateFn(),
                             agg_field, /*key_field=*/0,
                             options_.default_parallelism);
  }
  b.Sink("sink", left);
  PDSP_ASSIGN_OR_RETURN(LogicalPlan plan, b.Build());
  PDSP_RETURN_NOT_OK(AnnotateFilterSelectivities(&plan));
  return plan;
}

Result<LogicalPlan> QueryGenerator::GenerateRandom() {
  const auto& all = AllSyntheticStructures();
  return Generate(rng_.Choice(all));
}

}  // namespace pdsp
