#include "src/ml/models.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/stats.h"
#include "src/ml/metrics.h"
#include "src/ml/trainer.h"

namespace pdsp {
namespace {

// Synthetic flat-feature dataset: log(latency) is a noisy linear function of
// three features; everything else is distraction.
Dataset SyntheticFlatDataset(size_t n, uint64_t seed, double noise = 0.05) {
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < n; ++i) {
    PlanSample s;
    s.flat.assign(kFlatFeatureDim, 0.0);
    for (double& v : s.flat) v = rng.Uniform(-1.0, 1.0);
    s.flat.back() = 1.0;
    const double log_latency = 0.8 * s.flat[0] - 1.2 * s.flat[5] +
                               0.5 * s.flat[10] - 2.0 +
                               rng.Normal(0.0, noise);
    s.latency_s = std::exp(log_latency);
    // A trivially consistent graph: 2 nodes, 1 edge, features mirroring the
    // informative flat entries so the GNN can learn the same signal.
    s.graph.node_features = {Vector(kNodeFeatureDim, 0.0),
                             Vector(kNodeFeatureDim, 0.0)};
    s.graph.node_features[0][0] = s.flat[0];
    s.graph.node_features[0][1] = s.flat[5];
    s.graph.node_features[1][2] = s.flat[10];
    s.graph.edges = {{0, 1}};
    s.graph.sink = 1;
    s.structure_tag = static_cast<int>(i % 3);
    data.samples.push_back(std::move(s));
  }
  return data;
}

TrainOptions FastTrain() {
  TrainOptions opt;
  opt.max_epochs = 150;
  opt.patience = 10;
  opt.seed = 5;
  return opt;
}

TEST(ModelFactoryTest, CreatesAllKinds) {
  for (ModelKind kind :
       {ModelKind::kLinearRegression, ModelKind::kMlp,
        ModelKind::kRandomForest, ModelKind::kGnn,
        ModelKind::kGradientBoost}) {
    auto model = MakeModel(kind);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->kind(), kind);
    EXPECT_STREQ(model->name(), ModelKindToString(kind));
  }
}

TEST(ModelsTest, PredictBeforeFitFails) {
  Dataset data = SyntheticFlatDataset(4, 1);
  for (ModelKind kind :
       {ModelKind::kLinearRegression, ModelKind::kMlp,
        ModelKind::kRandomForest, ModelKind::kGnn,
        ModelKind::kGradientBoost}) {
    auto model = MakeModel(kind);
    EXPECT_TRUE(model->PredictLatency(data.samples[0])
                    .status()
                    .IsFailedPrecondition())
        << model->name();
  }
}

TEST(ModelsTest, FitOnEmptyDataFails) {
  Dataset empty;
  for (ModelKind kind :
       {ModelKind::kLinearRegression, ModelKind::kMlp,
        ModelKind::kRandomForest, ModelKind::kGnn}) {
    auto model = MakeModel(kind);
    EXPECT_FALSE(model->Fit(empty, empty, FastTrain()).ok())
        << model->name();
  }
}

// Every model family must learn the synthetic linear signal to a usable
// accuracy (LR exactly; the others approximately).
class ModelLearningTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelLearningTest, LearnsSyntheticSignal) {
  Dataset data = SyntheticFlatDataset(400, 7);
  auto split = SplitDataset(data, 0.7, 0.15, 3);
  ASSERT_TRUE(split.ok());
  auto model = MakeModel(GetParam());
  auto eval = TrainAndEvaluate(model.get(), *split, FastTrain());
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  // Median q-error on held-out data: noise floor is exp(0.05) ~ 1.05.
  EXPECT_LT(eval->test_metrics.median_q, 1.6) << model->name();
  EXPECT_GE(eval->test_metrics.median_q, 1.0);
  EXPECT_GT(eval->train_report.train_seconds, 0.0);
  EXPECT_GE(eval->train_report.epochs_run, 1);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelLearningTest,
                         ::testing::Values(ModelKind::kLinearRegression,
                                           ModelKind::kMlp,
                                           ModelKind::kRandomForest,
                                           ModelKind::kGnn,
                                           ModelKind::kGradientBoost));

TEST(ModelsTest, LinearRegressionRecoversExactCoefficients) {
  Dataset data = SyntheticFlatDataset(500, 11, /*noise=*/0.0);
  auto split = SplitDataset(data, 0.8, 0.1, 3);
  ASSERT_TRUE(split.ok());
  LinearRegressionModel lr;
  TrainOptions opt = FastTrain();
  opt.ridge = 1e-8;
  ASSERT_TRUE(lr.Fit(split->train, split->val, opt).ok());
  auto metrics = Evaluate(lr, split->test);
  ASSERT_TRUE(metrics.ok());
  EXPECT_LT(metrics->median_q, 1.01);
}

TEST(ModelsTest, EarlyStoppingTriggersOnConvergedMlp) {
  Dataset data = SyntheticFlatDataset(200, 13, /*noise=*/0.0);
  auto split = SplitDataset(data, 0.7, 0.15, 3);
  ASSERT_TRUE(split.ok());
  MlpModel mlp;
  TrainOptions opt = FastTrain();
  opt.max_epochs = 2000;
  opt.patience = 8;
  auto report = mlp.Fit(split->train, split->val, opt);
  ASSERT_TRUE(report.ok());
  // With a tiny noiseless problem the MLP converges long before 2000 epochs.
  EXPECT_TRUE(report->early_stopped);
  EXPECT_LT(report->epochs_run, 2000);
}

TEST(ModelsTest, RandomForestPrunesToBestValidationSize) {
  Dataset data = SyntheticFlatDataset(200, 17);
  auto split = SplitDataset(data, 0.7, 0.15, 3);
  ASSERT_TRUE(split.ok());
  RandomForestModel rf;
  TrainOptions opt = FastTrain();
  opt.rf_max_trees = 40;
  auto report = rf.Fit(split->train, split->val, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->epochs_run, 40);
  auto pred = rf.PredictLatency(split->test.samples[0]);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(*pred, 0.0);
}

TEST(ModelsTest, DeterministicTrainingForSameSeed) {
  Dataset data = SyntheticFlatDataset(150, 19);
  auto split = SplitDataset(data, 0.7, 0.15, 3);
  ASSERT_TRUE(split.ok());
  for (ModelKind kind : {ModelKind::kMlp, ModelKind::kRandomForest,
                         ModelKind::kGnn, ModelKind::kGradientBoost}) {
    auto a = MakeModel(kind);
    auto b = MakeModel(kind);
    TrainOptions opt = FastTrain();
    opt.max_epochs = 20;
    ASSERT_TRUE(a->Fit(split->train, split->val, opt).ok());
    ASSERT_TRUE(b->Fit(split->train, split->val, opt).ok());
    auto pa = a->PredictLatency(split->test.samples[0]);
    auto pb = b->PredictLatency(split->test.samples[0]);
    ASSERT_TRUE(pa.ok() && pb.ok());
    EXPECT_DOUBLE_EQ(*pa, *pb) << ModelKindToString(kind);
  }
}

TEST(QErrorTest, Properties) {
  EXPECT_DOUBLE_EQ(QError(2.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(4.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(QError(2.0, 4.0), 2.0);  // symmetric
  EXPECT_TRUE(std::isinf(QError(0.0, 1.0)));
  EXPECT_TRUE(std::isinf(QError(1.0, -1.0)));
}

TEST(EvaluateTest, EmptySetRejected) {
  LinearRegressionModel lr;
  EXPECT_FALSE(Evaluate(lr, Dataset{}).ok());
}

TEST(StandardizerTest, ZeroMeanUnitVariance) {
  Dataset data = SyntheticFlatDataset(300, 23);
  Standardizer std_;
  std_.Fit(data);
  RunningStats stats;
  for (const PlanSample& s : data.samples) {
    stats.Add(std_.Apply(s.flat)[0]);
  }
  EXPECT_NEAR(stats.mean(), 0.0, 1e-9);
  EXPECT_NEAR(stats.stddev(), 1.0, 1e-6);
}

TEST(SplitDatasetTest, ProportionsAndDisjointness) {
  Dataset data = SyntheticFlatDataset(100, 29);
  auto split = SplitDataset(data, 0.6, 0.2, 5);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size(), 60u);
  EXPECT_EQ(split->val.size(), 20u);
  EXPECT_EQ(split->test.size(), 20u);
  EXPECT_FALSE(SplitDataset(data, 0.8, 0.3, 5).ok());  // sums >= 1
  Dataset tiny = SyntheticFlatDataset(2, 1);
  EXPECT_FALSE(SplitDataset(tiny, 0.5, 0.25, 5).ok());
}

TEST(SplitByStructureTest, PartitionsByTag) {
  Dataset data = SyntheticFlatDataset(90, 31);  // tags 0,1,2 round robin
  Dataset seen, unseen;
  SplitByStructure(data, {2}, &seen, &unseen);
  EXPECT_EQ(seen.size(), 60u);
  EXPECT_EQ(unseen.size(), 30u);
  for (const PlanSample& s : unseen.samples) EXPECT_EQ(s.structure_tag, 2);
}

}  // namespace
}  // namespace pdsp
