// pdsp::obs tracing: records spans and instants and exports Chrome
// trace_event JSON ("traceEvents" array of complete "X", instant "i",
// counter "C" and metadata "M" events) viewable in Perfetto or
// chrome://tracing. Two timelines share one trace, separated by pid:
// kWallPid carries real (steady-clock) phase spans such as
// expand/place/simulate, kVirtualPid carries simulated virtual-time events
// where tid is the physical task id.

#ifndef PDSP_OBS_TRACE_H_
#define PDSP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/store/json.h"

namespace pdsp {
namespace obs {

/// Process ids separating the two timelines inside one trace file.
inline constexpr int kWallPid = 0;     ///< wall-clock phases
inline constexpr int kVirtualPid = 1;  ///< simulated virtual time

/// \brief One Chrome trace_event record (subset we emit).
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';  ///< 'X' complete, 'i' instant, 'C' counter, 'M' metadata
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< complete events only
  int pid = kWallPid;
  int tid = 0;
  /// Flat string/number args ("args" object; numbers serialized as numbers
  /// when `numeric` is true).
  struct Arg {
    std::string key;
    std::string str;
    double num = 0.0;
    bool numeric = false;
  };
  std::vector<Arg> args;
};

/// \brief Collects trace events in memory; all mutating calls are
/// mutex-guarded. Capped at `max_events` (further events are dropped and
/// counted) so verbose per-batch tracing cannot exhaust memory.
class Tracer {
 public:
  explicit Tracer(size_t max_events = 1'000'000) : max_events_(max_events) {}

  /// Verbose traces additionally record per-batch operator firings in
  /// virtual time (large!); default records only phases and samples.
  void set_verbose(bool v) { verbose_ = v; }
  bool verbose() const { return verbose_; }

  void AddComplete(std::string name, std::string category, double ts_us,
                   double dur_us, int pid = kWallPid, int tid = 0,
                   std::vector<TraceEvent::Arg> args = {});
  void AddInstant(std::string name, std::string category, double ts_us,
                  int pid = kWallPid, int tid = 0);
  /// Counter track (Perfetto renders these as a stacked area chart).
  void AddCounter(std::string name, double ts_us, double value,
                  int pid = kVirtualPid);
  /// Names a tid ("thread_name" metadata) so task rows read as
  /// "op[instance]" in the viewer.
  void SetThreadName(int pid, int tid, std::string name);

  size_t NumEvents() const;
  int64_t DroppedEvents() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"}.
  Json ToJson() const;

  /// Writes ToJson() to `path`, creating parent directories.
  Status WriteFile(const std::string& path) const;

 private:
  void Push(TraceEvent event);

  mutable Mutex mu_;
  std::vector<TraceEvent> events_ PDSP_GUARDED_BY(mu_);
  size_t max_events_;
  int64_t dropped_ PDSP_GUARDED_BY(mu_) = 0;
  bool verbose_ = false;
};

/// \brief RAII wall-clock span: emits one complete event on kWallPid from
/// construction to destruction (or End()). Null tracer = no-op.
class Span {
 public:
  Span(Tracer* tracer, std::string name, std::string category = "phase",
       int tid = 0);
  ~Span() { End(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span early; subsequent calls are no-ops.
  void End();

 private:
  Tracer* tracer_;
  std::string name_;
  std::string category_;
  int tid_;
  std::chrono::steady_clock::time_point start_;
  bool ended_ = false;
};

}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_TRACE_H_
