// Physical plans: the expansion of a logical plan into parallel operator
// instances (tasks) and partitioned channels between them — what Flink calls
// the ExecutionGraph. Task ordering is operator-major in topological order,
// matching the task order expected by cluster placement.

#ifndef PDSP_RUNTIME_PHYSICAL_PLAN_H_
#define PDSP_RUNTIME_PHYSICAL_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/query/plan.h"

namespace pdsp {

/// \brief One parallel instance of a logical operator.
struct PhysicalTask {
  int id = 0;                      ///< dense task id
  LogicalPlan::OpId op = 0;        ///< logical operator
  int instance = 0;                ///< instance index within the operator
};

/// \brief One logical dataflow edge with its effective routing mode and the
/// input port it feeds on the downstream operator (joins: 0 = left,
/// 1 = right; unary operators: 0).
struct ChannelGroup {
  LogicalPlan::OpId from_op = 0;
  LogicalPlan::OpId to_op = 0;
  Partitioning mode = Partitioning::kRebalance;
  int input_port = 0;
};

/// \brief Parallel expansion of a validated logical plan.
class PhysicalPlan {
 public:
  /// Expands the plan. kForward edges between operators of unequal
  /// parallelism degrade to kRebalance (as in Flink).
  static Result<PhysicalPlan> FromLogical(const LogicalPlan* logical);

  const LogicalPlan& logical() const { return *logical_; }

  size_t NumTasks() const { return tasks_.size(); }
  const PhysicalTask& task(int id) const { return tasks_.at(id); }
  const std::vector<PhysicalTask>& tasks() const { return tasks_; }

  /// First task id of an operator's instance range.
  int FirstTaskOf(LogicalPlan::OpId op) const { return first_task_.at(op); }
  /// Parallelism of an operator.
  int ParallelismOf(LogicalPlan::OpId op) const {
    return logical_->op(op).parallelism;
  }
  /// Task id of (op, instance).
  int TaskId(LogicalPlan::OpId op, int instance) const {
    return first_task_.at(op) + instance;
  }

  const std::vector<ChannelGroup>& channels() const { return channels_; }

  /// Channel groups leaving `op`.
  std::vector<ChannelGroup> ChannelsFrom(LogicalPlan::OpId op) const;

  /// Parallelism degrees per operator in task order (input for PlaceTasks).
  std::vector<int> InstancesPerOp() const;

  /// The key field a downstream operator partitions on for a given input
  /// port (kNoKey when the operator is not keyed on that port).
  size_t PartitionKeyField(LogicalPlan::OpId to_op, int input_port) const;

  std::string ToString() const;

 private:
  const LogicalPlan* logical_ = nullptr;
  std::vector<PhysicalTask> tasks_;
  std::vector<int> first_task_;
  std::vector<ChannelGroup> channels_;
};

}  // namespace pdsp

#endif  // PDSP_RUNTIME_PHYSICAL_PLAN_H_
