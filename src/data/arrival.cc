#include "src/data/arrival.h"

#include <cmath>

namespace pdsp {

const char* ArrivalKindToString(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kConstant:
      return "constant";
    case ArrivalKind::kBursty:
      return "bursty";
  }
  return "?";
}

const std::vector<double>& StandardEventRates() {
  static const std::vector<double> kRates = {
      10,     100,    1'000,    5'000,     10'000,    50'000,
      100'000, 200'000, 500'000, 1'000'000, 2'000'000, 4'000'000};
  return kRates;
}

Result<ArrivalProcess> ArrivalProcess::Create(const Options& options) {
  if (!(options.rate > 0.0)) {
    return Status::InvalidArgument("arrival rate must be positive");
  }
  if (options.kind == ArrivalKind::kBursty) {
    if (options.peak_factor < 1.0) {
      return Status::InvalidArgument("peak_factor must be >= 1");
    }
    if (!(options.burst_period > 0.0) || options.duty_cycle <= 0.0 ||
        options.duty_cycle > 1.0) {
      return Status::InvalidArgument("bad burst_period/duty_cycle");
    }
  }
  return ArrivalProcess(options);
}

double ArrivalProcess::RateAt(double t) const {
  if (options_.kind != ArrivalKind::kBursty) return options_.rate;
  // Mean rate is preserved: on-periods run at peak_factor*rate, off-periods
  // at the residual rate that keeps the cycle average equal to `rate`.
  const double phase =
      std::fmod(t, options_.burst_period) / options_.burst_period;
  const double on_rate = options_.rate * options_.peak_factor;
  const double d = options_.duty_cycle;
  const double off_rate =
      (d >= 1.0) ? on_rate
                 : std::max(0.0, options_.rate * (1.0 - options_.peak_factor * d) /
                                     (1.0 - d));
  return phase < d ? on_rate : off_rate;
}

double ArrivalProcess::NextInterarrival(Rng* rng) const {
  switch (options_.kind) {
    case ArrivalKind::kConstant:
      return 1.0 / options_.rate;
    case ArrivalKind::kPoisson:
      return rng->Exponential(options_.rate);
    case ArrivalKind::kBursty:
      // Thinning would be exact; a draw at the mean rate is adequate for the
      // single-event API (batching uses the exact per-window rate below).
      return rng->Exponential(options_.rate);
  }
  return 1.0 / options_.rate;
}

int64_t ArrivalProcess::EventsInWindow(double t, double dt, Rng* rng) const {
  if (dt <= 0.0) return 0;
  const double lambda = RateAt(t) * dt;
  switch (options_.kind) {
    case ArrivalKind::kConstant: {
      // Deterministic count with stochastic rounding of the fraction.
      const double exact = lambda;
      const auto whole = static_cast<int64_t>(exact);
      return whole + (rng->Bernoulli(exact - static_cast<double>(whole)) ? 1 : 0);
    }
    case ArrivalKind::kPoisson:
    case ArrivalKind::kBursty:
      return rng->Poisson(lambda);
  }
  return 0;
}

}  // namespace pdsp
