#include "src/runtime/physical_plan.h"

#include "src/common/string_util.h"

namespace pdsp {

Result<PhysicalPlan> PhysicalPlan::FromLogical(const LogicalPlan* logical) {
  if (logical == nullptr) return Status::InvalidArgument("null plan");
  if (!logical->validated()) {
    return Status::FailedPrecondition("logical plan must be validated");
  }
  PhysicalPlan phys;
  phys.logical_ = logical;
  phys.first_task_.assign(logical->NumOperators(), 0);

  // Tasks, operator-major in topological order? Placement expects the same
  // order as InstancesPerOp(); use plain operator-id order for stable ids.
  for (size_t op = 0; op < logical->NumOperators(); ++op) {
    phys.first_task_[op] = static_cast<int>(phys.tasks_.size());
    const int p = logical->op(static_cast<LogicalPlan::OpId>(op)).parallelism;
    for (int i = 0; i < p; ++i) {
      PhysicalTask t;
      t.id = static_cast<int>(phys.tasks_.size());
      t.op = static_cast<LogicalPlan::OpId>(op);
      t.instance = i;
      phys.tasks_.push_back(t);
    }
  }

  // Channels: one group per logical edge; the port is the position of the
  // edge among the downstream operator's inputs (insertion order).
  for (size_t op = 0; op < logical->NumOperators(); ++op) {
    const auto to = static_cast<LogicalPlan::OpId>(op);
    const auto inputs = logical->Inputs(to);
    for (size_t port = 0; port < inputs.size(); ++port) {
      ChannelGroup g;
      g.from_op = inputs[port];
      g.to_op = to;
      g.input_port = static_cast<int>(port);
      g.mode = logical->op(to).input_partitioning;
      if (g.mode == Partitioning::kForward &&
          logical->op(g.from_op).parallelism !=
              logical->op(to).parallelism) {
        g.mode = Partitioning::kRebalance;  // Flink-style degradation
      }
      phys.channels_.push_back(g);
    }
  }
  return phys;
}

std::vector<ChannelGroup> PhysicalPlan::ChannelsFrom(
    LogicalPlan::OpId op) const {
  std::vector<ChannelGroup> out;
  for (const ChannelGroup& g : channels_) {
    if (g.from_op == op) out.push_back(g);
  }
  return out;
}

std::vector<int> PhysicalPlan::InstancesPerOp() const {
  std::vector<int> out;
  out.reserve(logical_->NumOperators());
  for (size_t op = 0; op < logical_->NumOperators(); ++op) {
    out.push_back(logical_->op(static_cast<LogicalPlan::OpId>(op)).parallelism);
  }
  return out;
}

size_t PhysicalPlan::PartitionKeyField(LogicalPlan::OpId to_op,
                                       int input_port) const {
  const OperatorDescriptor& op = logical_->op(to_op);
  switch (op.type) {
    case OperatorType::kWindowAggregate:
      return op.key_field;
    case OperatorType::kWindowJoin:
      return input_port == 0 ? op.join_left_key : op.join_right_key;
    case OperatorType::kUdo:
      // Stateful UDOs partition on their first field by convention.
      return op.udo_stateful ? 0 : OperatorDescriptor::kNoKey;
    default:
      return OperatorDescriptor::kNoKey;
  }
}

std::string PhysicalPlan::ToString() const {
  std::string out = StrFormat("physical plan: %zu tasks, %zu channel groups\n",
                              tasks_.size(), channels_.size());
  for (size_t op = 0; op < logical_->NumOperators(); ++op) {
    const auto id = static_cast<LogicalPlan::OpId>(op);
    out += StrFormat("  %s: tasks [%d..%d)\n", logical_->op(id).name.c_str(),
                     FirstTaskOf(id), FirstTaskOf(id) + ParallelismOf(id));
  }
  for (const ChannelGroup& g : channels_) {
    out += StrFormat("  %s -> %s port %d via %s\n",
                     logical_->op(g.from_op).name.c_str(),
                     logical_->op(g.to_op).name.c_str(), g.input_port,
                     PartitioningToString(g.mode));
  }
  return out;
}

}  // namespace pdsp
