// pdsp::obs::report — `pdspbench report`: one self-contained HTML file from
// a run ledger (or a single-record baseline file, or an artifact
// directory). No JS, no external assets — every chart is inline SVG
// (src/obs/svg.h), so the file mails/archives as one artifact and renders
// offline. Per app the report shows the paper's Fig-3-style views:
//
//   * throughput vs parallelism,
//   * p50/p95/p99 latency vs parallelism,
//   * stacked latency-breakdown bars per measured cell,
//
// plus one sweep heatmap (label × parallelism, colored by throughput) with
// straggler cells flagged by re-applying the monitor's M201 rule to the
// recorded host wall seconds, a critical-path table read from each
// record's diagnosis.json bundle when artifact_dir is set, and — with
// ReportOptions::against_path — a compare table per matching label using
// the noise-aware CompareRecords engine.
//
// The generated HTML carries a machine-readable marker comment
//   <!-- pdsp-report charts=<N> records=<M> apps=<K> -->
// that CI uses to assert the <svg> count matches what the generator
// intended (tools/ci_check.sh).

#ifndef PDSP_OBS_REPORT_H_
#define PDSP_OBS_REPORT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/compare.h"
#include "src/obs/ledger.h"

namespace pdsp {
namespace obs {

struct ReportOptions {
  std::string title = "PDSP-Bench report";
  /// Baseline ledger / record file for the compare section; empty skips it.
  std::string against_path;
  CompareOptions compare;
  /// Only include records whose app (label up to the first '/') matches.
  std::string app_filter;
  /// Keep only the newest N records per app (0 = all) — mirrors
  /// `pdspbench history --limit`.
  size_t limit = 0;
  /// M201 re-derivation: a cell is flagged a straggler in the heatmap when
  /// its host wall seconds exceed this multiple of the app median.
  double straggler_ratio = 3.0;
};

/// \brief What the generator produced, for callers that validate.
struct ReportStats {
  size_t records = 0;  ///< measurement records rendered (summaries excluded)
  size_t apps = 0;     ///< distinct app groups
  size_t charts = 0;   ///< inline <svg> charts emitted
  size_t compared = 0; ///< labels matched against the baseline
};

struct ReportResult {
  std::string html;
  ReportStats stats;
};

/// App grouping key: the label up to the first '/' ("WC/p4" -> "WC",
/// "linear" -> "linear").
std::string AppOfLabel(const std::string& label);

/// True for sweep-summary provenance records (label "sweep" or "sweep/...")
/// — they carry no virtual-time results and are listed, not charted.
bool IsSummaryLabel(const std::string& label);

/// Loads records for reporting from any of:
///   * a JSONL ledger (one record per line),
///   * a single-record JSON file (bench/baselines/<app>.json layout),
///   * a directory containing ledger.jsonl.
Result<std::vector<RunRecord>> LoadRecordsForReport(const std::string& path);

/// Renders the report. Fails on an empty record set (after filtering) or
/// an unreadable --against path; missing diagnosis.json bundles degrade to
/// omitting that record's critical-path row.
Result<ReportResult> GenerateReport(const std::vector<RunRecord>& records,
                                    const ReportOptions& options);

/// Load + generate + atomically write `out_path`. Returns the stats.
Result<ReportStats> WriteReportFile(const std::string& input_path,
                                    const std::string& out_path,
                                    const ReportOptions& options);

}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_REPORT_H_
