// pdsp::obs comparison engine: noise-aware diffing of two ledger RunRecords
// (candidate vs baseline). Each headline virtual-time metric is classified
// improved / regressed / unchanged using two gates that must BOTH trip
// before a verdict leaves "unchanged":
//
//   1. relative threshold — |delta| / baseline >= CompareOptions::threshold;
//   2. noise — when repeat-run stddevs were recorded, |delta| must also
//      exceed `noise_sigmas` × the combined stddev
//      sqrt(baseline² + candidate²), so single-repeat jitter inside the
//      recorded variance never flags a regression.
//
// `pdspbench compare/baseline check` and tools/bench_gate.sh exit non-zero
// when any metric is classified regressed.

#ifndef PDSP_OBS_COMPARE_H_
#define PDSP_OBS_COMPARE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/obs/ledger.h"
#include "src/store/json.h"

namespace pdsp {
namespace obs {

enum class MetricVerdict { kUnchanged, kImproved, kRegressed };

const char* MetricVerdictToString(MetricVerdict verdict);

/// \brief One metric's baseline/candidate pair and its classification.
struct MetricDelta {
  std::string metric;          ///< e.g. "throughput_tps"
  double baseline = 0.0;
  double candidate = 0.0;
  double delta_frac = 0.0;     ///< (candidate - baseline) / |baseline|
  double noise = 0.0;          ///< combined repeat stddev (0 = unknown)
  bool higher_is_better = false;
  MetricVerdict verdict = MetricVerdict::kUnchanged;
};

struct CompareOptions {
  /// Minimum relative change before a metric can leave "unchanged".
  double threshold = 0.10;
  /// When repeat variance is known, |delta| must additionally exceed this
  /// many combined standard deviations. <= 0 disables the noise gate.
  double noise_sigmas = 2.0;
};

/// \brief Full comparison of two run records.
struct ComparisonReport {
  std::string baseline_id;
  std::string candidate_id;
  std::string label;
  /// False when the two records hash different plans — deltas may then be
  /// apples-to-oranges and the report says so.
  bool plan_hash_match = true;
  std::vector<MetricDelta> metrics;

  size_t CountVerdict(MetricVerdict verdict) const;
  bool HasRegressions() const {
    return CountVerdict(MetricVerdict::kRegressed) > 0;
  }

  Json ToJson() const;
  /// Aligned metric table plus a one-line verdict summary.
  std::string ToString() const;
};

/// Classifies one metric pair (see file comment for the two gates).
MetricDelta CompareMetric(std::string name, double baseline, double candidate,
                          bool higher_is_better, double baseline_noise,
                          double candidate_noise,
                          const CompareOptions& options);

/// Diffs the headline metrics of two records: throughput (higher is
/// better), median / p95 / p99 latency (lower is better). The median's
/// repeat stddev stands in as the noise estimate for p95/p99, which come
/// from a single diagnosed repeat.
ComparisonReport CompareRecords(const RunRecord& baseline,
                                const RunRecord& candidate,
                                const CompareOptions& options = {});

}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_COMPARE_H_
