// Smart-grid monitoring (the DEBS'14-style SG application): sweep the
// parallelism degree of the outlier-detection pipeline at a high plug event
// rate and locate the sweet spot — the paper's Exp. 1 workflow for a single
// application.
//
//   ./build/examples/smart_grid_monitoring

#include <cstdio>

#include "src/apps/apps.h"
#include "src/harness/harness.h"

using namespace pdsp;  // NOLINT — example brevity

int main() {
  const Cluster cluster = Cluster::M510(10);
  RunProtocol protocol;
  protocol.repeats = 2;
  protocol.duration_s = 3.0;
  protocol.warmup_s = 0.75;

  std::printf("Smart Grid (SG): %s\n\n",
              GetAppInfo(AppId::kSmartGrid).description);

  double best_latency = 1e300;
  int best_degree = 1;
  std::printf("%-12s %-14s %-14s\n", "parallelism", "p50 latency", "results/s");
  for (int degree : {1, 2, 4, 8, 16, 32, 64}) {
    AppOptions options;
    options.event_rate = 200000.0;  // smart plugs report aggressively
    options.parallelism = degree;
    options.window_scale = 0.5;
    auto plan = MakeApp(AppId::kSmartGrid, options);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    auto cell = MeasureCell(*plan, cluster, protocol);
    if (!cell.ok()) {
      std::printf("%-12d (no results: %s)\n", degree,
                  cell.status().ToString().c_str());
      continue;
    }
    std::printf("%-12d %-14s %-14s\n", degree,
                (LatencyCell(cell->mean_median_latency_s) + " ms").c_str(),
                ThroughputCell(cell->mean_throughput_tps).c_str());
    if (cell->mean_median_latency_s < best_latency) {
      best_latency = cell->mean_median_latency_s;
      best_degree = degree;
    }
  }
  std::printf("\nbest degree for this rate and cluster: %d (%.1f ms)\n",
              best_degree, best_latency * 1e3);
  std::printf("note the non-linearity: past the sweet spot, shuffle and\n"
              "coordination overhead outweigh the added instances (paper "
              "O2/O4).\n");
  return 0;
}
