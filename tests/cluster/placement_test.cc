#include "src/cluster/placement.h"

#include <gtest/gtest.h>

#include <numeric>

namespace pdsp {
namespace {

TEST(PlacementTest, EmptyClusterRejected) {
  Cluster empty;
  EXPECT_TRUE(PlaceTasks(empty, {2}, PlacementKind::kRoundRobin)
                  .status()
                  .IsInvalidArgument());
}

TEST(PlacementTest, NoTasksRejected) {
  Cluster c = Cluster::M510(2);
  EXPECT_FALSE(PlaceTasks(c, {}, PlacementKind::kRoundRobin).ok());
}

TEST(PlacementTest, NonPositiveParallelismRejected) {
  Cluster c = Cluster::M510(2);
  EXPECT_FALSE(PlaceTasks(c, {2, 0}, PlacementKind::kRoundRobin).ok());
}

TEST(PlacementTest, RoundRobinSpreadsEvenly) {
  Cluster c = Cluster::M510(4);
  auto p = PlaceTasks(c, {4, 4}, PlacementKind::kRoundRobin);
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->node_of_task.size(), 8u);
  for (int n : p->tasks_per_node) EXPECT_EQ(n, 2);
}

TEST(PlacementTest, AllNodesInRange) {
  Cluster c = Cluster::M510(3);
  for (PlacementKind kind :
       {PlacementKind::kRoundRobin, PlacementKind::kLeastLoaded,
        PlacementKind::kLocality, PlacementKind::kRandom}) {
    auto p = PlaceTasks(c, {5, 3, 7}, kind, 9);
    ASSERT_TRUE(p.ok()) << PlacementKindToString(kind);
    for (int n : p->node_of_task) {
      EXPECT_GE(n, 0);
      EXPECT_LT(n, 3);
    }
    EXPECT_EQ(std::accumulate(p->tasks_per_node.begin(),
                              p->tasks_per_node.end(), 0),
              15);
  }
}

TEST(PlacementTest, LeastLoadedBalancesByCapacity) {
  // One fast 16-core node and one 8-core node: least-loaded should put
  // roughly twice the tasks on the big node.
  Cluster c;
  c.AddNodes(C6525Spec(), 1);  // 16 cores, speed > 1
  c.AddNodes(M510Spec(), 1);   // 8 cores
  auto p = PlaceTasks(c, {24}, PlacementKind::kLeastLoaded);
  ASSERT_TRUE(p.ok());
  EXPECT_GT(p->tasks_per_node[0], p->tasks_per_node[1]);
  EXPECT_GE(p->tasks_per_node[0], 14);
}

TEST(PlacementTest, LocalityColocatesChainedInstances) {
  Cluster c = Cluster::M510(4);
  // Two chained operators of equal parallelism: instance j of op 1 should sit
  // with instance j of op 0.
  auto p = PlaceTasks(c, {4, 4}, PlacementKind::kLocality);
  ASSERT_TRUE(p.ok());
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(p->node_of_task[j], p->node_of_task[4 + j]) << "instance " << j;
  }
}

TEST(PlacementTest, LocalityFallsBackWhenNodeFull) {
  Cluster c = Cluster::M510(2);  // 8 cores each
  // Op 0 oversubscribes node capacity so co-location cannot always hold; the
  // placement must still succeed and remain within range.
  auto p = PlaceTasks(c, {16, 16}, PlacementKind::kLocality);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->node_of_task.size(), 32u);
}

TEST(PlacementTest, RandomIsSeedDeterministic) {
  Cluster c = Cluster::M510(5);
  auto a = PlaceTasks(c, {10}, PlacementKind::kRandom, 123);
  auto b = PlaceTasks(c, {10}, PlacementKind::kRandom, 123);
  auto d = PlaceTasks(c, {10}, PlacementKind::kRandom, 124);
  ASSERT_TRUE(a.ok() && b.ok() && d.ok());
  EXPECT_EQ(a->node_of_task, b->node_of_task);
  EXPECT_NE(a->node_of_task, d->node_of_task);
}

TEST(PlacementTest, OversubscriptionAllowed) {
  Cluster c = Cluster::M510(1);  // 8 cores
  auto p = PlaceTasks(c, {100}, PlacementKind::kLeastLoaded);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->tasks_per_node[0], 100);
}

TEST(PlacementTest, KindNames) {
  EXPECT_STREQ(PlacementKindToString(PlacementKind::kLocality), "locality");
  EXPECT_STREQ(PlacementKindToString(PlacementKind::kLeastLoaded),
               "least_loaded");
}

}  // namespace
}  // namespace pdsp
