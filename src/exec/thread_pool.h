// Fixed-size worker pool for the sweep scheduler. Deliberately minimal:
// tasks are type-erased thunks, results travel through std::future (so an
// exception thrown inside a task re-throws at the caller's .get(), not in
// the worker), and shutdown drains the queue before joining. The pool makes
// no fairness or affinity promises — sweep determinism never depends on
// which worker runs a cell (seeds derive from cell indices, results are
// canonicalized by submission order).

#ifndef PDSP_EXEC_THREAD_POOL_H_
#define PDSP_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"

namespace pdsp {
namespace exec {

/// \brief Fixed pool of `num_threads` workers draining a FIFO task queue.
/// Thread-safe; Submit may be called from any thread, including from inside
/// a task (the queue is unbounded, so this cannot deadlock).
class ThreadPool {
 public:
  /// Clamps to at least one worker.
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins (same as Shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. An exception thrown
  /// by `fn` is captured and re-thrown from future::get(). Submitting after
  /// Shutdown() returns a future holding a std::runtime_error.
  template <typename F>
  auto Submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    const bool accepted = Enqueue([task]() { (*task)(); });
    if (!accepted) {
      // Burn the packaged task with an error so the future is never
      // abandoned (get() would otherwise throw broken_promise, which is
      // less actionable).
      try {
        throw std::runtime_error("ThreadPool::Submit after Shutdown");
      } catch (...) {
        // packaged_task has no set_exception; run a replacement promise.
        std::promise<R> broken;
        broken.set_exception(std::current_exception());
        return broken.get_future();
      }
    }
    return future;
  }

  /// Stops accepting tasks, finishes everything already queued and joins
  /// the workers. Idempotent.
  void Shutdown();

 private:
  /// Returns false when the pool has been shut down.
  bool Enqueue(std::function<void()> fn);
  void WorkerLoop(int index);

  Mutex mu_;
  /// _any so it can block on the annotated Mutex directly.
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_ PDSP_GUARDED_BY(mu_);
  bool shutdown_ PDSP_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Worker count for `jobs` requested jobs: 0 or negative means "one per
/// hardware thread" (std::thread::hardware_concurrency, at least 1).
int ResolveJobs(int jobs);

}  // namespace exec
}  // namespace pdsp

#endif  // PDSP_EXEC_THREAD_POOL_H_
