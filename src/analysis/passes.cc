// The built-in lint passes. Code table (also in DESIGN.md):
//
//   sink-io                  PDSP-E010 mismatched sink input schemas
//                            PDSP-W011 sink parallelism > 1
//   dead-operator            PDSP-E101 cycle, E102 no sink, E103 extra sink,
//                            E104 unreachable from sources, E105 dead end
//   window-legality          PDSP-E201 bad duration, E202 bad length,
//                            E203 slide > size, E204 slide <= 0,
//                            PDSP-W205 degenerate slide == size
//   join-key-types           PDSP-E301 key type mismatch,
//                            PDSP-W302 floating-point join keys
//   field-refs               PDSP-E401 filter field, E402 agg field,
//                            E403 agg key, E404 join key, E405 source index
//   filter-literal           PDSP-W501 string/numeric comparison,
//                            PDSP-E502 non-finite literal
//   selectivity-range        PDSP-W601 filter hint > 1, E602 non-finite hint,
//                            E603 bad flatmap fanout, W604 join hint > 1,
//                            E605 non-finite join hint, E606 bad UDO
//                            selectivity, E607 bad UDO cost factor
//   repartition              PDSP-E701 keyed op without hash input,
//                            PDSP-W702 shuffle immediately re-keyed,
//                            PDSP-W703 forward across unequal parallelism
//   udo-checks               PDSP-E801 empty UDO kind, W802 unregistered
//                            kind, W803 stateful UDO on keyless stream
//   parallelism-feasibility  PDSP-W901 operator wider than cluster,
//                            PDSP-W902 heavy oversubscription,
//                            PDSP-I903 oversubscription
//   dataflow-partitioning    PDSP-W704 proven redundant shuffle (input
//                            already hash-partitioned on the same key)
//   rate-interval            PDSP-W605 statically over-saturated operator
//   const-refinement         PDSP-E503 statically always-false filter,
//                            PDSP-W504 always-true filter,
//                            PDSP-I505 statically dead subgraph
//   determinism              (no diagnostics: publishes the verdict in the
//                            property table / ledger)
//
// The last four passes surface facts proven by the dataflow analyses
// (src/analysis/properties.h) through AnalysisContext::props; they emit
// nothing when the underlying analysis did not converge.
//
// Codes are stable: never renumber, only append.

#include <cmath>

#include "src/analysis/pass.h"
#include "src/analysis/properties.h"
#include "src/common/string_util.h"
#include "src/runtime/udo.h"
#include "src/sim/cost_model.h"

namespace pdsp {
namespace analysis {
namespace {

using OpId = LogicalPlan::OpId;

bool IsStatelessUnary(OperatorType type) {
  return type == OperatorType::kFilter || type == OperatorType::kMap ||
         type == OperatorType::kFlatMap;
}

// --- dead-operator -------------------------------------------------------

class DeadOperatorPass : public AnalysisPass {
 public:
  const char* name() const override { return "dead-operator"; }
  const char* description() const override {
    return "cycles, missing/extra sinks, unreachable and dead-end operators";
  }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    if (!ctx.acyclic) {
      out->push_back(MakeDiag(Severity::kError, "PDSP-E101", ctx, -1,
                              "plan contains a cycle",
                              "remove the back edge; dataflow is a DAG"));
      return;  // reachability is meaningless on a cyclic plan
    }
    const size_t n = ctx.NumOps();
    std::vector<OpId> sinks;
    for (size_t i = 0; i < n; ++i) {
      if (ctx.op(static_cast<OpId>(i)).type == OperatorType::kSink) {
        sinks.push_back(static_cast<OpId>(i));
      }
    }
    if (sinks.empty()) {
      out->push_back(MakeDiag(Severity::kError, "PDSP-E102", ctx, -1,
                              "plan has no sink",
                              "terminate the dataflow with exactly one sink"));
    }
    for (size_t i = 1; i < sinks.size(); ++i) {
      out->push_back(MakeDiag(
          Severity::kError, "PDSP-E103", ctx, sinks[i],
          "plan has more than one sink",
          "merge result streams into a single sink operator"));
    }

    // Forward reachability from sources, backward from sinks.
    std::vector<bool> from_source(n, false), to_sink(n, false);
    for (const OpId id : ctx.topo) {
      if (ctx.op(id).type == OperatorType::kSource) from_source[id] = true;
      for (const OpId up : ctx.inputs[id]) {
        if (from_source[up]) from_source[id] = true;
      }
    }
    for (auto it = ctx.topo.rbegin(); it != ctx.topo.rend(); ++it) {
      if (ctx.op(*it).type == OperatorType::kSink) to_sink[*it] = true;
      for (const OpId down : ctx.outputs[*it]) {
        if (to_sink[down]) to_sink[*it] = true;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const OpId id = static_cast<OpId>(i);
      if (!from_source[i]) {
        out->push_back(MakeDiag(
            Severity::kError, "PDSP-E104", ctx, id,
            "operator is not reachable from any source",
            "connect it downstream of a source or delete it"));
      } else if (!to_sink[i]) {
        out->push_back(MakeDiag(
            Severity::kError, "PDSP-E105", ctx, id,
            "operator output never reaches the sink (dead operator)",
            "route its output toward the sink or delete it"));
      }
    }
  }
};

// --- window-legality -----------------------------------------------------

class WindowLegalityPass : public AnalysisPass {
 public:
  const char* name() const override { return "window-legality"; }
  const char* description() const override {
    return "window duration/length positivity and slide-vs-size agreement";
  }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    for (size_t i = 0; i < ctx.NumOps(); ++i) {
      const OpId id = static_cast<OpId>(i);
      const OperatorDescriptor& op = ctx.op(id);
      if (op.type != OperatorType::kWindowAggregate &&
          op.type != OperatorType::kWindowJoin) {
        continue;
      }
      const WindowSpec& w = op.window;
      if (w.policy == WindowPolicy::kTime &&
          (!std::isfinite(w.duration_ms) || w.duration_ms <= 0.0)) {
        out->push_back(MakeDiag(
            Severity::kError, "PDSP-E201", ctx, id,
            StrFormat("time window duration %g ms is not positive and finite",
                      w.duration_ms),
            "set duration_ms > 0"));
      }
      if (w.policy == WindowPolicy::kCount && w.length_tuples <= 0) {
        out->push_back(MakeDiag(
            Severity::kError, "PDSP-E202", ctx, id,
            StrFormat("count window length %lld is not positive",
                      static_cast<long long>(w.length_tuples)),
            "set length_tuples > 0"));
      }
      if (w.type == WindowType::kSliding) {
        if (!std::isfinite(w.slide_ratio) || w.slide_ratio > 1.0) {
          out->push_back(MakeDiag(
              Severity::kError, "PDSP-E203", ctx, id,
              StrFormat("sliding window slide exceeds its size "
                        "(slide_ratio %g > 1)",
                        w.slide_ratio),
              "use slide_ratio in (0, 1); tuples between panes would be "
              "dropped"));
        } else if (w.slide_ratio <= 0.0) {
          out->push_back(MakeDiag(
              Severity::kError, "PDSP-E204", ctx, id,
              StrFormat("sliding window slide_ratio %g is not positive",
                        w.slide_ratio),
              "use slide_ratio in (0, 1)"));
        } else if (w.slide_ratio == 1.0) {
          out->push_back(MakeDiag(
              Severity::kWarning, "PDSP-W205", ctx, id,
              "sliding window with slide == size behaves like a tumbling "
              "window",
              "declare the window tumbling to avoid sliding-path overhead"));
        }
      }
    }
  }
};

// --- join-key-types ------------------------------------------------------

class JoinKeyTypesPass : public AnalysisPass {
 public:
  const char* name() const override { return "join-key-types"; }
  const char* description() const override {
    return "equi-join key type agreement between the two inputs";
  }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    for (size_t i = 0; i < ctx.NumOps(); ++i) {
      const OpId id = static_cast<OpId>(i);
      const OperatorDescriptor& op = ctx.op(id);
      if (op.type != OperatorType::kWindowJoin) continue;
      const auto& in = ctx.inputs[id];
      if (in.size() != 2 || !ctx.SchemaKnown(in[0]) ||
          !ctx.SchemaKnown(in[1])) {
        continue;  // arity/fields covered by dead-operator / field-refs
      }
      const Schema& l = ctx.schema(in[0]);
      const Schema& r = ctx.schema(in[1]);
      if (op.join_left_key >= l.NumFields() ||
          op.join_right_key >= r.NumFields()) {
        continue;  // field-refs reports the out-of-range index
      }
      const DataType lt = l.field(op.join_left_key).type;
      const DataType rt = r.field(op.join_right_key).type;
      if (lt != rt) {
        out->push_back(MakeDiag(
            Severity::kError, "PDSP-E301", ctx, id,
            StrFormat("join key types disagree: left %s (%s) vs right %s "
                      "(%s); hash partitioning would never co-locate "
                      "matching keys",
                      l.field(op.join_left_key).name.c_str(),
                      DataTypeToString(lt),
                      r.field(op.join_right_key).name.c_str(),
                      DataTypeToString(rt)),
            "key both inputs on fields of the same data type"));
      } else if (lt == DataType::kDouble) {
        out->push_back(MakeDiag(
            Severity::kWarning, "PDSP-W302", ctx, id,
            "equi-join on floating-point keys relies on exact double "
            "equality",
            "join on integer or string keys"));
      }
    }
  }
};

// --- field-refs ----------------------------------------------------------

class FieldRefsPass : public AnalysisPass {
 public:
  const char* name() const override { return "field-refs"; }
  const char* description() const override {
    return "field and source indices resolve against the derived schemas";
  }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    for (size_t i = 0; i < ctx.NumOps(); ++i) {
      const OpId id = static_cast<OpId>(i);
      const OperatorDescriptor& op = ctx.op(id);
      const auto& in = ctx.inputs[id];
      const bool in0_known = !in.empty() && ctx.SchemaKnown(in[0]);
      switch (op.type) {
        case OperatorType::kSource:
          if (op.source_index < 0 ||
              op.source_index >=
                  static_cast<int>(ctx.plan->sources().size())) {
            out->push_back(MakeDiag(
                Severity::kError, "PDSP-E405", ctx, id,
                StrFormat("source_index %d out of range (%zu sources bound)",
                          op.source_index, ctx.plan->sources().size()),
                "bind the stream with LogicalPlan::AddSource"));
          }
          break;
        case OperatorType::kFilter:
          if (in0_known &&
              op.filter_field >= ctx.schema(in[0]).NumFields()) {
            out->push_back(MakeDiag(
                Severity::kError, "PDSP-E401", ctx, id,
                StrFormat("filter references field %zu but the input schema "
                          "has %zu fields (%s)",
                          op.filter_field, ctx.schema(in[0]).NumFields(),
                          ctx.schema(in[0]).ToString().c_str()),
                "reference a field inside the upstream schema"));
          }
          break;
        case OperatorType::kWindowAggregate:
          if (in0_known) {
            const Schema& s = ctx.schema(in[0]);
            if (op.agg_field >= s.NumFields()) {
              out->push_back(MakeDiag(
                  Severity::kError, "PDSP-E402", ctx, id,
                  StrFormat("aggregate field %zu out of range (input has "
                            "%zu fields)",
                            op.agg_field, s.NumFields()),
                  "aggregate over a field inside the upstream schema"));
            }
            if (op.key_field != OperatorDescriptor::kNoKey &&
                op.key_field >= s.NumFields()) {
              out->push_back(MakeDiag(
                  Severity::kError, "PDSP-E403", ctx, id,
                  StrFormat("grouping key field %zu out of range (input has "
                            "%zu fields)",
                            op.key_field, s.NumFields()),
                  "key by a field inside the upstream schema, or use kNoKey "
                  "for a global window"));
            }
          }
          break;
        case OperatorType::kWindowJoin:
          if (in.size() == 2) {
            if (ctx.SchemaKnown(in[0]) &&
                op.join_left_key >= ctx.schema(in[0]).NumFields()) {
              out->push_back(MakeDiag(
                  Severity::kError, "PDSP-E404", ctx, id,
                  StrFormat("left join key %zu out of range (left input has "
                            "%zu fields)",
                            op.join_left_key,
                            ctx.schema(in[0]).NumFields()),
                  "key inside the left input schema"));
            }
            if (ctx.SchemaKnown(in[1]) &&
                op.join_right_key >= ctx.schema(in[1]).NumFields()) {
              out->push_back(MakeDiag(
                  Severity::kError, "PDSP-E404", ctx, id,
                  StrFormat("right join key %zu out of range (right input "
                            "has %zu fields)",
                            op.join_right_key,
                            ctx.schema(in[1]).NumFields()),
                  "key inside the right input schema"));
            }
          }
          break;
        default:
          break;
      }
    }
  }
};

// --- filter-literal ------------------------------------------------------

class FilterLiteralPass : public AnalysisPass {
 public:
  const char* name() const override { return "filter-literal"; }
  const char* description() const override {
    return "filter literals are finite and type-compatible with the field";
  }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    for (size_t i = 0; i < ctx.NumOps(); ++i) {
      const OpId id = static_cast<OpId>(i);
      const OperatorDescriptor& op = ctx.op(id);
      if (op.type != OperatorType::kFilter) continue;
      if (op.filter_literal.is_double() &&
          !std::isfinite(op.filter_literal.AsDouble())) {
        out->push_back(MakeDiag(
            Severity::kError, "PDSP-E502", ctx, id,
            StrFormat("filter literal %s is not finite",
                      op.filter_literal.ToString().c_str()),
            "compare against a finite literal"));
      }
      const auto& in = ctx.inputs[id];
      if (in.empty() || !ctx.SchemaKnown(in[0])) continue;
      const Schema& s = ctx.schema(in[0]);
      if (op.filter_field >= s.NumFields()) continue;  // field-refs reports
      const DataType ft = s.field(op.filter_field).type;
      const bool field_is_string = ft == DataType::kString;
      const bool literal_is_string = op.filter_literal.is_string();
      if (field_is_string != literal_is_string) {
        out->push_back(MakeDiag(
            Severity::kWarning, "PDSP-W501", ctx, id,
            StrFormat("filter compares %s field '%s' against %s literal %s "
                      "(string/number comparison coerces strings to their "
                      "length)",
                      DataTypeToString(ft),
                      s.field(op.filter_field).name.c_str(),
                      DataTypeToString(op.filter_literal.type()),
                      op.filter_literal.ToString().c_str()),
            "compare the field against a literal of its own type"));
      }
    }
  }
};

// --- selectivity-range ---------------------------------------------------

class SelectivityRangePass : public AnalysisPass {
 public:
  const char* name() const override { return "selectivity-range"; }
  const char* description() const override {
    return "selectivity/fanout/cost hints are finite and in range";
  }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    for (size_t i = 0; i < ctx.NumOps(); ++i) {
      const OpId id = static_cast<OpId>(i);
      const OperatorDescriptor& op = ctx.op(id);
      switch (op.type) {
        case OperatorType::kFilter:
          // Negative (including -inf) is the documented "unknown" sentinel;
          // NaN and +inf are never meaningful.
          if (!std::isfinite(op.selectivity_hint) &&
              !(op.selectivity_hint < 0.0)) {
            out->push_back(MakeDiag(
                Severity::kError, "PDSP-E602", ctx, id,
                "filter selectivity hint is not finite",
                "use a value in [0, 1], or a negative value for 'unknown'"));
          } else if (op.selectivity_hint > 1.0) {
            out->push_back(MakeDiag(
                Severity::kWarning, "PDSP-W601", ctx, id,
                StrFormat("filter selectivity hint %g exceeds 1; filters "
                          "cannot amplify their input",
                          op.selectivity_hint),
                "use a pass fraction in [0, 1]"));
          }
          break;
        case OperatorType::kFlatMap:
          if (!std::isfinite(op.flatmap_fanout) || op.flatmap_fanout < 0.0) {
            out->push_back(MakeDiag(
                Severity::kError, "PDSP-E603", ctx, id,
                StrFormat("flatmap fanout %g is not a finite non-negative "
                          "mean output count",
                          op.flatmap_fanout),
                "use a finite fanout >= 0"));
          }
          break;
        case OperatorType::kWindowJoin:
          if (!std::isfinite(op.join_selectivity_hint) &&
              !(op.join_selectivity_hint < 0.0)) {
            out->push_back(MakeDiag(
                Severity::kError, "PDSP-E605", ctx, id,
                "join selectivity hint is not finite",
                "use a match probability in [0, 1], or a negative value for "
                "'unknown'"));
          } else if (op.join_selectivity_hint > 1.0) {
            out->push_back(MakeDiag(
                Severity::kWarning, "PDSP-W604", ctx, id,
                StrFormat("join selectivity hint %g exceeds 1; it is a "
                          "per-pair match probability",
                          op.join_selectivity_hint),
                "use a match probability in [0, 1]"));
          }
          break;
        case OperatorType::kUdo:
          if (!std::isfinite(op.udo_selectivity) ||
              op.udo_selectivity < 0.0) {
            out->push_back(MakeDiag(
                Severity::kError, "PDSP-E606", ctx, id,
                StrFormat("UDO selectivity %g is not a finite non-negative "
                          "mean output count",
                          op.udo_selectivity),
                "use a finite selectivity >= 0"));
          }
          if (!std::isfinite(op.udo_cost_factor) ||
              op.udo_cost_factor < 0.0) {
            out->push_back(MakeDiag(
                Severity::kError, "PDSP-E607", ctx, id,
                StrFormat("UDO cost factor %g is not finite and "
                          "non-negative",
                          op.udo_cost_factor),
                "use a per-tuple cost factor >= 0 (1.0 = standard map)"));
          }
          break;
        default:
          break;
      }
    }
  }
};

// --- repartition ---------------------------------------------------------

class RepartitionPass : public AnalysisPass {
 public:
  const char* name() const override { return "repartition"; }
  const char* description() const override {
    return "missing hash partitioning before keyed state; redundant shuffles";
  }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    for (size_t i = 0; i < ctx.NumOps(); ++i) {
      const OpId id = static_cast<OpId>(i);
      const OperatorDescriptor& op = ctx.op(id);

      // E701: keyed operator fed by anything but a hash shuffle. Build()
      // normalizes this away; hand-assembled or deserialized plans can
      // still carry it, and it silently mis-keys state.
      if (op.RequiresKeyedInput() &&
          op.input_partitioning != Partitioning::kHash) {
        out->push_back(MakeDiag(
            Severity::kError, "PDSP-E701", ctx, id,
            StrFormat("operator keeps keyed state but its input is %s "
                      "partitioned; instances would each see an arbitrary "
                      "slice of every key",
                      PartitioningToString(op.input_partitioning)),
            "hash-partition the input on the key field"));
      }

      // W702: a shuffle into a stateless pass-through whose only consumers
      // immediately re-key is pure network overhead.
      if (IsStatelessUnary(op.type) &&
          (op.input_partitioning == Partitioning::kRebalance ||
           op.input_partitioning == Partitioning::kHash) &&
          !ctx.outputs[id].empty()) {
        bool all_rekey = true;
        for (const OpId down : ctx.outputs[id]) {
          const OperatorDescriptor& d = ctx.op(down);
          if (!(d.RequiresKeyedInput() &&
                d.input_partitioning == Partitioning::kHash)) {
            all_rekey = false;
            break;
          }
        }
        const auto& in = ctx.inputs[id];
        if (all_rekey && !in.empty()) {
          const bool forward_viable =
              ctx.op(in[0]).parallelism == op.parallelism;
          out->push_back(MakeDiag(
              Severity::kWarning, "PDSP-W702", ctx, id,
              StrFormat("%s shuffle into '%s' is redundant: every consumer "
                        "immediately re-partitions by key",
                        PartitioningToString(op.input_partitioning),
                        op.name.c_str()),
              forward_viable
                  ? "use forward partitioning here and let the downstream "
                    "hash do the only shuffle"
                  : "match this operator's parallelism with its input and "
                    "use forward partitioning"));
        }
      }

      // W703: forward between unequal degrees silently degrades to
      // rebalance during physical expansion.
      if (op.type != OperatorType::kSource &&
          op.input_partitioning == Partitioning::kForward) {
        for (const OpId up : ctx.inputs[id]) {
          if (ctx.op(up).parallelism != op.parallelism) {
            out->push_back(MakeDiag(
                Severity::kWarning, "PDSP-W703", ctx, id,
                StrFormat("forward partitioning from '%s' (p=%d) to '%s' "
                          "(p=%d) degrades to rebalance at expansion",
                          ctx.op(up).name.c_str(), ctx.op(up).parallelism,
                          op.name.c_str(), op.parallelism),
                "match the parallelism degrees or declare rebalance "
                "explicitly"));
          }
        }
      }
    }
  }
};

// --- udo-checks ----------------------------------------------------------

class UdoChecksPass : public AnalysisPass {
 public:
  const char* name() const override { return "udo-checks"; }
  const char* description() const override {
    return "UDO kinds resolve; stateful UDOs sit on keyed streams";
  }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    for (size_t i = 0; i < ctx.NumOps(); ++i) {
      const OpId id = static_cast<OpId>(i);
      const OperatorDescriptor& op = ctx.op(id);
      if (op.type != OperatorType::kUdo) continue;
      if (op.udo_kind.empty()) {
        out->push_back(MakeDiag(
            Severity::kError, "PDSP-E801", ctx, id,
            "UDO has no kind; it cannot be resolved at execution time",
            "set udo_kind to a registered kind (see UdoRegistry::Kinds)"));
      } else if (!UdoRegistry::Global().Contains(op.udo_kind)) {
        out->push_back(MakeDiag(
            Severity::kWarning, "PDSP-W802", ctx, id,
            StrFormat("UDO kind '%s' is not registered in this process",
                      op.udo_kind.c_str()),
            "register the kind before executing (RegisterAppUdos registers "
            "the application suite)"));
      }
      // W803: keyed state over a stream that structurally has no keys —
      // the instance-local state of a stateful UDO fed by a global
      // (un-keyed) window aggregate partitions an effectively keyless
      // stream by hash of an aggregate value.
      if (op.udo_stateful) {
        for (const OpId up : ctx.inputs[id]) {
          const OperatorDescriptor& u = ctx.op(up);
          if (u.type == OperatorType::kWindowAggregate &&
              u.key_field == OperatorDescriptor::kNoKey) {
            out->push_back(MakeDiag(
                Severity::kWarning, "PDSP-W803", ctx, id,
                StrFormat("stateful UDO consumes the global (un-keyed) "
                          "aggregate '%s'; per-key state over aggregate "
                          "values is usually a modelling mistake",
                          u.name.c_str()),
                "key the upstream aggregate, or make the UDO stateless"));
          }
        }
      }
    }
  }
};

// --- parallelism-feasibility --------------------------------------------

class ParallelismFeasibilityPass : public AnalysisPass {
 public:
  const char* name() const override { return "parallelism-feasibility"; }
  const char* description() const override {
    return "parallelism degrees vs. the cluster's slot capacity";
  }
  bool needs_cluster() const override { return true; }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    const int slots = ctx.cluster->TotalCores();
    if (slots <= 0) return;
    int total = 0;
    for (size_t i = 0; i < ctx.NumOps(); ++i) {
      const OpId id = static_cast<OpId>(i);
      const int p = ctx.op(id).parallelism;
      total += p;
      if (p > slots) {
        out->push_back(MakeDiag(
            Severity::kWarning, "PDSP-W901", ctx, id,
            StrFormat("parallelism %d exceeds the cluster's %d task slots; "
                      "instances of this one operator will time-share "
                      "cores",
                      p, slots),
            "cap the degree at the slot count or grow the cluster"));
      }
    }
    if (total > 2 * slots) {
      out->push_back(MakeDiag(
          Severity::kWarning, "PDSP-W902", ctx, -1,
          StrFormat("total parallelism %d oversubscribes the cluster's %d "
                    "slots more than 2x; contention will dominate the "
                    "measurement",
                    total, slots),
          "reduce degrees or measure on a larger cluster"));
    } else if (total > slots) {
      out->push_back(MakeDiag(
          Severity::kInfo, "PDSP-I903", ctx, -1,
          StrFormat("total parallelism %d exceeds the cluster's %d slots "
                    "(deliberate in the oversubscription sweeps)",
                    total, slots),
          ""));
    }
  }
};

// --- sink-io -------------------------------------------------------------

class SinkIoPass : public AnalysisPass {
 public:
  const char* name() const override { return "sink-io"; }
  const char* description() const override {
    return "sink fan-in schema agreement and sink parallelism";
  }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    for (size_t i = 0; i < ctx.NumOps(); ++i) {
      const OpId id = static_cast<OpId>(i);
      const OperatorDescriptor& op = ctx.op(id);
      if (op.type != OperatorType::kSink) continue;
      const auto& in = ctx.inputs[id];
      for (size_t k = 1; k < in.size(); ++k) {
        if (!ctx.SchemaKnown(in[0]) || !ctx.SchemaKnown(in[k])) continue;
        if (!(ctx.schema(in[0]) == ctx.schema(in[k]))) {
          out->push_back(MakeDiag(
              Severity::kError, "PDSP-E010", ctx, id,
              StrFormat("sink merges streams with different schemas: '%s' "
                        "yields (%s) but '%s' yields (%s)",
                        ctx.op(in[0]).name.c_str(),
                        ctx.schema(in[0]).ToString().c_str(),
                        ctx.op(in[k]).name.c_str(),
                        ctx.schema(in[k]).ToString().c_str()),
              "align the input schemas (e.g. with a map) before the sink"));
        }
      }
      if (op.parallelism > 1) {
        out->push_back(MakeDiag(
            Severity::kWarning, "PDSP-W011", ctx, id,
            StrFormat("sink parallelism %d splits the latency measurement "
                      "across instances",
                      op.parallelism),
            "keep the sink at parallelism 1 (the harness convention)"));
      }
    }
  }
};

// --- dataflow-partitioning -----------------------------------------------

// Surfaces the *proven* redundant shuffles derived by the partitioning
// analysis. Unlike the heuristic PDSP-W702 ("shuffle immediately re-keyed",
// a local pattern match), PDSP-W704 rests on provenance: the analysis
// tracked the routing value back to where it was produced and showed the
// input stream is already placed by Hash(value) % parallelism.
class DataflowPartitioningPass : public AnalysisPass {
 public:
  const char* name() const override { return "dataflow-partitioning"; }
  const char* description() const override {
    return "proven redundant shuffles (input already hash-partitioned on "
           "the same key)";
  }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    if (ctx.props == nullptr || !ctx.props->partitioning_stats.ok()) return;
    for (size_t i = 0; i < ctx.props->ops.size() && i < ctx.NumOps(); ++i) {
      const OperatorProperties& p = ctx.props->ops[i];
      if (!p.redundant_shuffle) continue;
      out->push_back(MakeDiag(
          Severity::kWarning, "PDSP-W704", ctx, static_cast<OpId>(i),
          StrFormat("redundant shuffle: %s", p.redundant_shuffle_why.c_str()),
          "use forward partitioning to keep tuples on their producing "
          "instances (elides the network hop)"));
    }
  }
};

// --- rate-interval -------------------------------------------------------

// Static saturation check: even the *lower* bound of the derived input-rate
// interval exceeds what the operator's instances can serve on the fastest
// node of the cluster (reference core when no cluster is given). Fires
// before any simulation runs.
class RateIntervalPass : public AnalysisPass {
 public:
  const char* name() const override { return "rate-interval"; }
  const char* description() const override {
    return "statically over-saturated operators (derived min input rate "
           "exceeds service capacity)";
  }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    if (ctx.props == nullptr || !ctx.props->rate_stats.ok()) return;
    double speed = 1.0;
    if (ctx.cluster != nullptr) {
      for (const Node& node : ctx.cluster->nodes()) {
        speed = std::max(speed, node.effective_speed);
      }
    }
    const CostModel cost;
    for (size_t i = 0; i < ctx.props->ops.size() && i < ctx.NumOps(); ++i) {
      const OpId id = static_cast<OpId>(i);
      const OperatorDescriptor& op = ctx.op(id);
      if (op.type == OperatorType::kSource) continue;
      const RateInterval& in = ctx.props->ops[i].input_rate;
      if (in.lo <= 0.0) continue;
      const double per_tuple = cost.InputTupleCost(op);
      const double capacity =
          static_cast<double>(std::max(1, op.parallelism)) * speed /
          std::max(1e-12, per_tuple);
      const double utilization = in.lo / capacity;
      if (utilization < 1.0) continue;
      const int needed = static_cast<int>(
          std::ceil(static_cast<double>(std::max(1, op.parallelism)) *
                    utilization));
      out->push_back(MakeDiag(
          Severity::kWarning, "PDSP-W605", ctx, id,
          StrFormat("statically over-saturated: proven minimum input rate "
                    "%.0f ev/s is %.1fx the service capacity of %d "
                    "instance(s) (%.0f ev/s)",
                    in.lo, utilization, op.parallelism, capacity),
          StrFormat("raise parallelism to at least %d or reduce the "
                    "upstream rate",
                    needed)));
    }
  }
};

// --- const-refinement ----------------------------------------------------

// Statically-unsatisfiable (and vacuous) filters, proven by constant
// propagation of generator value intervals, plus the dead subgraphs an
// always-false filter induces.
class ConstRefinementPass : public AnalysisPass {
 public:
  const char* name() const override { return "const-refinement"; }
  const char* description() const override {
    return "statically always-false/always-true filters and the dead "
           "subgraphs they induce";
  }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    if (ctx.props == nullptr || !ctx.props->refinement_stats.ok()) return;
    for (size_t i = 0; i < ctx.props->ops.size() && i < ctx.NumOps(); ++i) {
      const OpId id = static_cast<OpId>(i);
      const OperatorProperties& p = ctx.props->ops[i];
      if (p.filter_always_false) {
        out->push_back(MakeDiag(
            Severity::kError, "PDSP-E503", ctx, id,
            StrFormat("filter is statically always false: %s",
                      p.filter_why.c_str()),
            "fix the literal (or the generator range); everything "
            "downstream of this filter is dead"));
      } else if (p.filter_always_true) {
        out->push_back(MakeDiag(
            Severity::kWarning, "PDSP-W504", ctx, id,
            StrFormat("filter is statically always true: %s",
                      p.filter_why.c_str()),
            "drop the filter or choose a literal inside the value range"));
      }
      if (p.statically_dead && !p.filter_always_false) {
        out->push_back(MakeDiag(
            Severity::kInfo, "PDSP-I505", ctx, id,
            "statically dead: the derived maximum input rate is zero "
            "(downstream of an always-false filter)",
            "remove the dead subgraph or fix the filter that kills it"));
      }
    }
  }
};

// --- determinism ---------------------------------------------------------

// Emits no diagnostics: the determinism verdict is a property, not a
// defect. Registered so `analyze --list-passes` documents where the
// verdict in the property table / ledger comes from.
class DeterminismPass : public AnalysisPass {
 public:
  const char* name() const override { return "determinism"; }
  const char* description() const override {
    return "per-plan determinism verdict (published in the --dataflow "
           "property table and ledger records; no diagnostics)";
  }

  void Run(const AnalysisContext& ctx,
           std::vector<Diagnostic>* out) const override {
    (void)ctx;
    (void)out;
  }
};

}  // namespace

}  // namespace analysis
}  // namespace pdsp

// Registered here (rather than in pass.cc) so the pass list and the code
// table live in one translation unit.
namespace pdsp {
namespace analysis {

PassRegistry PassRegistry::Default() {
  PassRegistry registry;
  (void)registry.Register(std::make_unique<DeadOperatorPass>());
  (void)registry.Register(std::make_unique<WindowLegalityPass>());
  (void)registry.Register(std::make_unique<JoinKeyTypesPass>());
  (void)registry.Register(std::make_unique<FieldRefsPass>());
  (void)registry.Register(std::make_unique<FilterLiteralPass>());
  (void)registry.Register(std::make_unique<SelectivityRangePass>());
  (void)registry.Register(std::make_unique<RepartitionPass>());
  (void)registry.Register(std::make_unique<UdoChecksPass>());
  (void)registry.Register(std::make_unique<ParallelismFeasibilityPass>());
  (void)registry.Register(std::make_unique<SinkIoPass>());
  (void)registry.Register(std::make_unique<DataflowPartitioningPass>());
  (void)registry.Register(std::make_unique<RateIntervalPass>());
  (void)registry.Register(std::make_unique<ConstRefinementPass>());
  (void)registry.Register(std::make_unique<DeterminismPass>());
  return registry;
}

}  // namespace analysis
}  // namespace pdsp
