// Model accuracy metrics. The paper reports Q-error [39]:
// q(c, c') = max(c/c', c'/c) >= 1, where c is the true latency and c' the
// prediction; q = 1 is a perfect prediction.

#ifndef PDSP_ML_METRICS_H_
#define PDSP_ML_METRICS_H_

#include <string>

#include "src/common/status.h"
#include "src/ml/model.h"

namespace pdsp {

/// q(c, c') = max(c/c', c'/c). Non-positive inputs yield +infinity.
double QError(double truth, double prediction);

/// \brief Q-error distribution over an evaluation set.
struct EvalMetrics {
  double median_q = 0.0;
  double mean_q = 0.0;
  double p90_q = 0.0;
  double p95_q = 0.0;
  double max_q = 0.0;
  size_t count = 0;

  std::string ToString() const;
};

/// Evaluates a fitted model over a dataset.
Result<EvalMetrics> Evaluate(const LearnedCostModel& model,
                             const Dataset& data);

}  // namespace pdsp

#endif  // PDSP_ML_METRICS_H_
