#include "src/common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace pdsp {

Status CreateParentDirectories(const std::string& path) {
  const std::filesystem::path p(path);
  if (!p.has_parent_path()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(p.parent_path(), ec);
  if (ec && !std::filesystem::is_directory(p.parent_path())) {
    return Status::Internal("cannot create " + p.parent_path().string() +
                            ": " + ec.message());
  }
  return Status::OK();
}

Status AtomicRename(const std::string& tmp, const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot rename " + tmp + " to " + path + ": " +
                            ec.message());
  }
  return Status::OK();
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out.good()) return Status::Internal("cannot open " + path);
  out << text;
  out.flush();
  if (!out.good()) return Status::Internal("short write to " + path);
  return Status::OK();
}

Status WriteTextFileAtomic(const std::string& path, const std::string& text) {
  PDSP_RETURN_NOT_OK(CreateParentDirectories(path));
  const std::string tmp = path + ".tmp";
  PDSP_RETURN_NOT_OK(WriteTextFile(tmp, text));
  return AtomicRename(tmp, path);
}

Status AppendLineAtomic(const std::string& path, const std::string& line) {
  PDSP_RETURN_NOT_OK(CreateParentDirectories(path));
  std::string buf = line;
  if (buf.empty() || buf.back() != '\n') buf.push_back('\n');
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    return Status::Internal("cannot open " + path + " for append: " +
                            std::strerror(errno));
  }
  // One write() call: O_APPEND makes the (offset-seek + write) atomic, so
  // concurrent appenders cannot interleave within a line.
  size_t off = 0;
  Status status = Status::OK();
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      status = Status::Internal("append to " + path + ": " +
                                std::strerror(errno));
      break;
    }
    off += static_cast<size_t>(n);
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::Internal("close " + path + ": " + std::strerror(errno));
  }
  return status;
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::Internal("read error on " + path);
  return buf.str();
}

}  // namespace pdsp
