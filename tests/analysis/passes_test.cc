// One deliberately broken plan per lint pass, asserting the expected stable
// diagnostic code fires (and, for the error codes, that the analyzer's
// CheckPlan gate rejects the plan). Plans that LogicalPlan::Validate() would
// itself refuse are hand-assembled and analyzed unvalidated — the analyzer
// must tolerate structurally broken plans by contract.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/cluster/cluster.h"
#include "src/query/builder.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace analysis {
namespace {

using pdsp::testing::KeyValueStream;
using pdsp::testing::PoissonArrival;

AnalyzeOptions Quiet() {
  AnalyzeOptions options;
  options.record_metrics = false;
  return options;
}

// Raw descriptor helpers for hand-assembled (unvalidated) plans.
OperatorDescriptor Op(OperatorType type, const std::string& name) {
  OperatorDescriptor op;
  op.type = type;
  op.name = name;
  return op;
}

LogicalPlan::OpId MustAdd(LogicalPlan* plan, OperatorDescriptor op) {
  auto id = plan->AddOperator(std::move(op));
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  return *id;
}

// src -> window_agg -> sink with a caller-tweaked window, built through the
// builder with the analysis gate off.
LogicalPlan AggPlanWithWindow(const WindowSpec& window) {
  PlanBuilder b;
  auto src = b.Source("src", KeyValueStream(), PoissonArrival(100.0));
  auto agg = b.WindowAggregate("agg", src, window, AggregateFn::kSum, 1, 0);
  b.Sink("sink", agg);
  b.SkipAnalysis();
  auto plan = b.Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *std::move(plan);
}

TEST(DeadOperatorPassTest, CycleYieldsE101) {
  LogicalPlan plan;
  plan.AddSource({KeyValueStream(), PoissonArrival(10)});
  auto s = MustAdd(&plan, Op(OperatorType::kSource, "s"));
  auto m1 = MustAdd(&plan, Op(OperatorType::kMap, "m1"));
  auto m2 = MustAdd(&plan, Op(OperatorType::kMap, "m2"));
  auto k = MustAdd(&plan, Op(OperatorType::kSink, "k"));
  ASSERT_TRUE(plan.Connect(s, m1).ok());
  ASSERT_TRUE(plan.Connect(m1, m2).ok());
  ASSERT_TRUE(plan.Connect(m2, m1).ok());  // back edge
  ASSERT_TRUE(plan.Connect(m2, k).ok());
  const AnalysisReport report = AnalyzePlan(plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E101")) << report.ToString();
  EXPECT_FALSE(CheckPlan(plan).ok());
}

TEST(DeadOperatorPassTest, MissingSinkYieldsE102) {
  LogicalPlan plan;
  plan.AddSource({KeyValueStream(), PoissonArrival(10)});
  auto s = MustAdd(&plan, Op(OperatorType::kSource, "s"));
  auto m = MustAdd(&plan, Op(OperatorType::kMap, "m"));
  ASSERT_TRUE(plan.Connect(s, m).ok());
  const AnalysisReport report = AnalyzePlan(plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E102")) << report.ToString();
}

TEST(DeadOperatorPassTest, SecondSinkYieldsE103) {
  LogicalPlan plan;
  plan.AddSource({KeyValueStream(), PoissonArrival(10)});
  auto s = MustAdd(&plan, Op(OperatorType::kSource, "s"));
  auto k1 = MustAdd(&plan, Op(OperatorType::kSink, "k1"));
  auto k2 = MustAdd(&plan, Op(OperatorType::kSink, "k2"));
  ASSERT_TRUE(plan.Connect(s, k1).ok());
  ASSERT_TRUE(plan.Connect(s, k2).ok());
  const AnalysisReport report = AnalyzePlan(plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E103")) << report.ToString();
}

TEST(DeadOperatorPassTest, UnreachableOperatorYieldsE104) {
  LogicalPlan plan;
  plan.AddSource({KeyValueStream(), PoissonArrival(10)});
  auto s = MustAdd(&plan, Op(OperatorType::kSource, "s"));
  auto k = MustAdd(&plan, Op(OperatorType::kSink, "k"));
  auto orphan = MustAdd(&plan, Op(OperatorType::kMap, "orphan"));
  ASSERT_TRUE(plan.Connect(s, k).ok());
  ASSERT_TRUE(plan.Connect(orphan, k).ok());  // no input: not source-fed
  const AnalysisReport report = AnalyzePlan(plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E104")) << report.ToString();
}

TEST(DeadOperatorPassTest, DeadEndOperatorYieldsE105) {
  LogicalPlan plan;
  plan.AddSource({KeyValueStream(), PoissonArrival(10)});
  auto s = MustAdd(&plan, Op(OperatorType::kSource, "s"));
  auto k = MustAdd(&plan, Op(OperatorType::kSink, "k"));
  auto dead = MustAdd(&plan, Op(OperatorType::kMap, "dead"));
  ASSERT_TRUE(plan.Connect(s, k).ok());
  ASSERT_TRUE(plan.Connect(s, dead).ok());  // output goes nowhere
  const AnalysisReport report = AnalyzePlan(plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E105")) << report.ToString();
}

TEST(WindowLegalityPassTest, NonPositiveDurationYieldsE201) {
  WindowSpec w;
  w.policy = WindowPolicy::kTime;
  w.duration_ms = 0.0;
  const AnalysisReport report = AnalyzePlan(AggPlanWithWindow(w), Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E201")) << report.ToString();
}

TEST(WindowLegalityPassTest, NonPositiveLengthYieldsE202) {
  WindowSpec w;
  w.policy = WindowPolicy::kCount;
  w.length_tuples = 0;
  const AnalysisReport report = AnalyzePlan(AggPlanWithWindow(w), Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E202")) << report.ToString();
}

TEST(WindowLegalityPassTest, SlideBeyondSizeYieldsE203) {
  WindowSpec w;
  w.type = WindowType::kSliding;
  w.slide_ratio = 1.5;
  const AnalysisReport report = AnalyzePlan(AggPlanWithWindow(w), Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E203")) << report.ToString();
}

TEST(WindowLegalityPassTest, NonPositiveSlideYieldsE204) {
  WindowSpec w;
  w.type = WindowType::kSliding;
  w.slide_ratio = 0.0;
  const AnalysisReport report = AnalyzePlan(AggPlanWithWindow(w), Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E204")) << report.ToString();
}

TEST(WindowLegalityPassTest, DegenerateSlideYieldsW205) {
  WindowSpec w;
  w.type = WindowType::kSliding;
  w.slide_ratio = 1.0;
  const AnalysisReport report = AnalyzePlan(AggPlanWithWindow(w), Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-W205")) << report.ToString();
  EXPECT_FALSE(report.HasErrors()) << report.ToString();  // warn, not error
}

TEST(JoinKeyTypesPassTest, MismatchedKeyTypesYieldE301) {
  PlanBuilder b;
  auto s1 = b.Source("s1", KeyValueStream(), PoissonArrival(100.0));
  auto s2 = b.Source("s2", KeyValueStream(), PoissonArrival(100.0));
  WindowSpec w;
  // left key: field 0 (int); right key: field 1 (double).
  auto j = b.WindowJoin("join", s1, s2, 0, 1, w);
  b.Sink("sink", j);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E301")) << report.ToString();
  EXPECT_FALSE(CheckPlan(*plan).ok());
}

TEST(JoinKeyTypesPassTest, DoubleKeysYieldW302) {
  PlanBuilder b;
  auto s1 = b.Source("s1", KeyValueStream(), PoissonArrival(100.0));
  auto s2 = b.Source("s2", KeyValueStream(), PoissonArrival(100.0));
  WindowSpec w;
  auto j = b.WindowJoin("join", s1, s2, 1, 1, w);  // both keys double
  b.Sink("sink", j);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-W302")) << report.ToString();
}

TEST(FieldRefsPassTest, FilterFieldOutOfRangeYieldsE401) {
  LogicalPlan plan;
  plan.AddSource({KeyValueStream(), PoissonArrival(10)});
  auto s = MustAdd(&plan, Op(OperatorType::kSource, "s"));
  OperatorDescriptor filter = Op(OperatorType::kFilter, "f");
  filter.filter_field = 99;  // schema has 2 fields
  auto f = MustAdd(&plan, filter);
  auto k = MustAdd(&plan, Op(OperatorType::kSink, "k"));
  ASSERT_TRUE(plan.Connect(s, f).ok());
  ASSERT_TRUE(plan.Connect(f, k).ok());
  const AnalysisReport report = AnalyzePlan(plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E401")) << report.ToString();
}

TEST(FieldRefsPassTest, AggFieldAndKeyOutOfRangeYieldE402E403) {
  LogicalPlan plan;
  plan.AddSource({KeyValueStream(), PoissonArrival(10)});
  auto s = MustAdd(&plan, Op(OperatorType::kSource, "s"));
  OperatorDescriptor agg = Op(OperatorType::kWindowAggregate, "agg");
  agg.input_partitioning = Partitioning::kHash;
  agg.agg_field = 7;
  agg.key_field = 9;
  auto a = MustAdd(&plan, agg);
  auto k = MustAdd(&plan, Op(OperatorType::kSink, "k"));
  ASSERT_TRUE(plan.Connect(s, a).ok());
  ASSERT_TRUE(plan.Connect(a, k).ok());
  const AnalysisReport report = AnalyzePlan(plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E402")) << report.ToString();
  EXPECT_TRUE(report.HasCode("PDSP-E403")) << report.ToString();
}

TEST(FieldRefsPassTest, JoinKeyOutOfRangeYieldsE404) {
  LogicalPlan plan;
  plan.AddSource({KeyValueStream(), PoissonArrival(10)});
  auto s1 = MustAdd(&plan, Op(OperatorType::kSource, "s1"));
  auto s2 = MustAdd(&plan, Op(OperatorType::kSource, "s2"));
  OperatorDescriptor join = Op(OperatorType::kWindowJoin, "j");
  join.input_partitioning = Partitioning::kHash;
  join.join_left_key = 11;
  auto j = MustAdd(&plan, join);
  auto k = MustAdd(&plan, Op(OperatorType::kSink, "k"));
  ASSERT_TRUE(plan.Connect(s1, j).ok());
  ASSERT_TRUE(plan.Connect(s2, j).ok());
  ASSERT_TRUE(plan.Connect(j, k).ok());
  const AnalysisReport report = AnalyzePlan(plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E404")) << report.ToString();
}

TEST(FieldRefsPassTest, SourceIndexOutOfRangeYieldsE405) {
  LogicalPlan plan;  // no sources bound at all
  OperatorDescriptor src = Op(OperatorType::kSource, "s");
  src.source_index = 3;
  auto s = MustAdd(&plan, src);
  auto k = MustAdd(&plan, Op(OperatorType::kSink, "k"));
  ASSERT_TRUE(plan.Connect(s, k).ok());
  const AnalysisReport report = AnalyzePlan(plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E405")) << report.ToString();
}

TEST(FilterLiteralPassTest, StringLiteralOnNumericFieldYieldsW501) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0));
  auto f = b.Filter("f", s, 1, FilterOp::kGt, Value("fifty"));
  b.Sink("sink", f);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-W501")) << report.ToString();
}

TEST(FilterLiteralPassTest, NonFiniteLiteralYieldsE502) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0));
  auto f = b.Filter("f", s, 1, FilterOp::kGt,
                    Value(std::numeric_limits<double>::quiet_NaN()));
  b.Sink("sink", f);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E502")) << report.ToString();
}

TEST(SelectivityRangePassTest, FilterHintAboveOneYieldsW601) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0));
  auto f = b.Filter("f", s, 1, FilterOp::kGt, Value(50.0));
  b.WithSelectivityHint(f, 2.5);
  b.Sink("sink", f);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-W601")) << report.ToString();
}

TEST(SelectivityRangePassTest, NaNFilterHintYieldsE602) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0));
  auto f = b.Filter("f", s, 1, FilterOp::kGt, Value(50.0));
  b.WithSelectivityHint(f, std::numeric_limits<double>::quiet_NaN());
  b.Sink("sink", f);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E602")) << report.ToString();
}

TEST(SelectivityRangePassTest, NegativeHintIsUnknownNotError) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0));
  auto f = b.Filter("f", s, 1, FilterOp::kGt, Value(50.0));
  b.WithSelectivityHint(f, -1.0);  // documented "unknown" sentinel
  b.Sink("sink", f);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_FALSE(report.HasCode("PDSP-E602")) << report.ToString();
  EXPECT_FALSE(report.HasCode("PDSP-W601")) << report.ToString();
}

TEST(SelectivityRangePassTest, NegativeFlatMapFanoutYieldsE603) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0));
  auto fm = b.FlatMap("fm", s, -2.0);
  b.Sink("sink", fm);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E603")) << report.ToString();
}

TEST(SelectivityRangePassTest, JoinHintAboveOneYieldsW604) {
  auto plan = pdsp::testing::TwoWayJoinPlan();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto join = plan->FindOperator("join");
  ASSERT_TRUE(join.ok());
  plan->mutable_op(*join)->join_selectivity_hint = 3.0;
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-W604")) << report.ToString();
}

TEST(SelectivityRangePassTest, InfiniteJoinHintYieldsE605) {
  auto plan = pdsp::testing::TwoWayJoinPlan();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto join = plan->FindOperator("join");
  ASSERT_TRUE(join.ok());
  plan->mutable_op(*join)->join_selectivity_hint =
      std::numeric_limits<double>::infinity();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E605")) << report.ToString();
}

TEST(SelectivityRangePassTest, BadUdoNumbersYieldE606E607) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0));
  auto u = b.Udo("u", s, "some_kind", /*cost_factor=*/-1.0,
                 /*selectivity=*/-0.5);
  b.Sink("sink", u);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E606")) << report.ToString();
  EXPECT_TRUE(report.HasCode("PDSP-E607")) << report.ToString();
}

TEST(RepartitionPassTest, KeyedOperatorWithoutHashInputYieldsE701) {
  LogicalPlan plan;
  plan.AddSource({KeyValueStream(), PoissonArrival(10)});
  auto s = MustAdd(&plan, Op(OperatorType::kSource, "s"));
  OperatorDescriptor agg = Op(OperatorType::kWindowAggregate, "agg");
  agg.key_field = 0;
  agg.agg_field = 1;
  agg.input_partitioning = Partitioning::kRebalance;  // must be hash
  auto a = MustAdd(&plan, agg);
  auto k = MustAdd(&plan, Op(OperatorType::kSink, "k"));
  ASSERT_TRUE(plan.Connect(s, a).ok());
  ASSERT_TRUE(plan.Connect(a, k).ok());
  const AnalysisReport report = AnalyzePlan(plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E701")) << report.ToString();
}

TEST(RepartitionPassTest, ShuffleIntoRekeyedMapYieldsW702) {
  // src -> map (rebalance shuffle) -> keyed agg (hash): the map's shuffle
  // is redundant because its only consumer re-keys immediately.
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0));
  auto m = b.Map("m", s);
  WindowSpec w;
  auto agg = b.WindowAggregate("agg", m, w, AggregateFn::kSum, 1, 0);
  b.Sink("sink", agg);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-W702")) << report.ToString();
}

TEST(RepartitionPassTest, ForwardAcrossUnequalParallelismYieldsW703) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0), 4);
  auto m = b.Map("m", s, 2);
  b.WithPartitioning(m, Partitioning::kForward);
  b.Sink("sink", m);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-W703")) << report.ToString();
}

TEST(UdoChecksPassTest, EmptyKindYieldsE801) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0));
  auto u = b.Udo("u", s, "");
  b.Sink("sink", u);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E801")) << report.ToString();
}

TEST(UdoChecksPassTest, UnregisteredKindYieldsW802) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0));
  auto u = b.Udo("u", s, "definitely_not_registered_kind");
  b.Sink("sink", u);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-W802")) << report.ToString();
}

TEST(UdoChecksPassTest, StatefulUdoOnGlobalAggregateYieldsW803) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0));
  WindowSpec w;
  auto agg = b.WindowAggregate("agg", s, w, AggregateFn::kSum, 1,
                               OperatorDescriptor::kNoKey);
  auto u = b.Udo("u", agg, "some_kind", 1.0, 1.0, /*stateful=*/true);
  b.Sink("sink", u);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-W803")) << report.ToString();
}

TEST(ParallelismFeasibilityPassTest, NeedsClusterToRun) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0), 4096);
  b.Sink("sink", s);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport without = AnalyzePlan(*plan, Quiet());
  EXPECT_FALSE(without.HasCode("PDSP-W901")) << without.ToString();

  const Cluster cluster = Cluster::M510(2);
  AnalyzeOptions options = Quiet();
  options.cluster = &cluster;
  const AnalysisReport with = AnalyzePlan(*plan, options);
  EXPECT_TRUE(with.HasCode("PDSP-W901")) << with.ToString();
  EXPECT_TRUE(with.HasCode("PDSP-W902")) << with.ToString();
}

TEST(ParallelismFeasibilityPassTest, MildOversubscriptionYieldsI903) {
  const Cluster cluster = Cluster::M510(1);
  const int slots = cluster.TotalCores();
  PlanBuilder b;
  // Total parallelism in (slots, 2*slots]: info, not warning.
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0), slots);
  b.Sink("sink", s, 1);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  AnalyzeOptions options = Quiet();
  options.cluster = &cluster;
  const AnalysisReport report = AnalyzePlan(*plan, options);
  EXPECT_TRUE(report.HasCode("PDSP-I903")) << report.ToString();
  EXPECT_FALSE(report.HasCode("PDSP-W902")) << report.ToString();
}

TEST(SinkIoPassTest, MismatchedSinkInputsYieldE010) {
  LogicalPlan plan;
  plan.AddSource({KeyValueStream(), PoissonArrival(10)});
  auto s = MustAdd(&plan, Op(OperatorType::kSource, "s"));
  OperatorDescriptor agg = Op(OperatorType::kWindowAggregate, "agg");
  agg.input_partitioning = Partitioning::kHash;
  agg.key_field = 0;
  agg.agg_field = 1;
  auto a = MustAdd(&plan, agg);
  auto k = MustAdd(&plan, Op(OperatorType::kSink, "k"));
  ASSERT_TRUE(plan.Connect(s, a).ok());
  // Sink merges the raw stream (key:int, val:double) with the aggregate
  // output (key:int, agg:double) — different schemas.
  ASSERT_TRUE(plan.Connect(s, k).ok());
  ASSERT_TRUE(plan.Connect(a, k).ok());
  const AnalysisReport report = AnalyzePlan(plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E010")) << report.ToString();
}

TEST(SinkIoPassTest, WideSinkYieldsW011) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0));
  b.Sink("sink", s, /*parallelism=*/4);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-W011")) << report.ToString();
}

}  // namespace
}  // namespace analysis
}  // namespace pdsp
