// The parallel sweep scheduler. A figure/table reproduction is a grid of
// independent cells — (app × structure × parallelism × rate × cluster)
// combinations, each a deterministic virtual-time simulation — so RunSweep
// fans them across --jobs workers and merges the observability state back
// deterministically:
//
//   * every cell runs under its own RunContext (tracer, metrics registry,
//     seed state) bound to its worker's private HostProfiler;
//   * cell seeds derive only from each cell's protocol, never from worker
//     identity or execution order, so --jobs=1 and --jobs=N produce
//     bit-identical per-cell virtual-time results;
//   * results, merged metrics and ledger appends are canonicalized by cell
//     index (submission order), not completion order;
//   * per-worker phase timers are merged into HostProfiler::Global() (and
//     the returned HostProfile) as worker phases — kept separate from
//     single-threaded wall-clock phases so concurrent busy-seconds are
//     never double-counted as wall seconds.

#ifndef PDSP_EXEC_SWEEP_H_
#define PDSP_EXEC_SWEEP_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/harness.h"
#include "src/obs/monitor.h"

namespace pdsp {
namespace exec {

/// \brief One sweep cell: a plan factory plus the protocol to measure it
/// under. The factory runs on the worker (plan construction is pure and
/// cheap); `cluster` is copied in so the cell owns everything it touches.
struct SweepCell {
  /// Display/row identifier. Also used as protocol.label when that is
  /// empty, so ledger records and trace spans are named per cell.
  std::string label;
  std::function<Result<LogicalPlan>()> make_plan;
  Cluster cluster;
  RunProtocol protocol;
};

/// \brief Scheduler knobs for one sweep.
struct SweepOptions {
  /// Worker count; <= 0 means one per hardware thread.
  int jobs = 1;
  /// Sweep name: prefixes worker-phase names ("<name>:worker0") and labels
  /// the optional summary ledger record.
  std::string name = "sweep";
  /// When enabled, RunSweep appends one summary RunRecord (label = `name`,
  /// host_wall_s = sweep wall seconds, parallelism = jobs, repeats = cell
  /// count) after the per-cell records — the hook bench_gate.sh uses to
  /// compare jobs=1 vs jobs=N wall clock.
  LedgerOptions summary_ledger;
  /// Live monitoring (obs::SnapshotSampler); off by default. The monitor
  /// only observes — per-cell virtual-time results stay bit-identical with
  /// it on or off, at any jobs count.
  obs::MonitorOptions monitor;
  /// Install a scoped SIGINT handler for the duration of the sweep: on
  /// Ctrl-C, workers drain their in-flight cells but claim no new ones,
  /// completed cells still append to the ledger in canonical order, the
  /// monitor flushes a final progress.jsonl snapshot, and
  /// SweepResult::interrupted is set (CLI drivers then exit 130). The
  /// previous handler is restored when RunSweep returns.
  bool install_sigint = false;
};

/// \brief Outcome of one cell, in canonical (submission) order.
struct SweepCellOutcome {
  std::string label;
  Result<CellResult> result;
};

/// \brief A completed sweep.
struct SweepResult {
  std::vector<SweepCellOutcome> cells;  ///< canonical submission order
  int jobs = 1;                         ///< resolved worker count
  double wall_s = 0.0;                  ///< sweep wall-clock seconds
  /// Per-cell registries merged in canonical order, plus the sweep's
  /// worker-phase host gauges (pdsp.host.workers, worker_phase.*).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Host usage at join + per-worker phase timers.
  obs::HostProfile host;
  /// True when a SIGINT arrived while install_sigint was set; cells that
  /// never ran carry a non-ok "sweep interrupted" result.
  bool interrupted = false;
  /// Final monitor state (meaningful when options.monitor.enabled). Its
  /// codes are folded into the summary ledger record's diagnosis_codes and
  /// exported as pdsp.monitor.* gauges on `metrics`.
  obs::MonitorSummary monitor;

  /// Count of cells whose result is ok().
  size_t NumOk() const;
};

/// Runs every cell across `options.jobs` workers. Per-cell ledger appends
/// (cells with protocol.ledger.enabled) happen at join in canonical order —
/// never from workers — so ledger record order is independent of jobs.
SweepResult RunSweep(const std::vector<SweepCell>& cells,
                     const SweepOptions& options);

}  // namespace exec
}  // namespace pdsp

#endif  // PDSP_EXEC_SWEEP_H_
