// Property: the facts the dataflow analyses *prove* about a plan agree
// with what the simulator actually does. Rate intervals must contain the
// observed per-operator rates across all fourteen applications; a plan
// whose subgraph is proven statically dead must deliver zero tuples there;
// a statically over-saturated operator must saturate when simulated; a
// proven-redundant shuffle must route every tuple to the instance forward
// partitioning would pick; and deterministic-verdict plans must reproduce
// bit-identically.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/analysis/pass.h"
#include "src/analysis/properties.h"
#include "src/apps/apps.h"
#include "src/query/builder.h"
#include "src/sim/simulation.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

using pdsp::testing::KeyValueStream;
using pdsp::testing::PoissonArrival;

ExecutionOptions ShortRun(double duration_s = 2.5) {
  ExecutionOptions exec;
  exec.sim.duration_s = duration_s;
  exec.sim.warmup_s = 0.5;
  exec.sim.seed = 404;
  return exec;
}

TEST(DataflowPropertyTest, RateIntervalsContainObservedAppRates) {
  AppOptions options;
  options.event_rate = 20000.0;
  options.parallelism = 2;
  // Shrink the apps' windows so multi-second windows still fire several
  // times inside the short simulation horizon.
  options.window_scale = 0.25;
  const ExecutionOptions exec = ShortRun();

  for (const AppInfo& info : AllApps()) {
    auto plan = MakeApp(info.id, options);
    ASSERT_TRUE(plan.ok()) << info.abbrev << ": " << plan.status().ToString();
    const analysis::AnalysisContext ctx = analysis::AnalysisContext::Make(*plan);
    ASSERT_NE(ctx.props, nullptr);
    ASSERT_TRUE(ctx.props->AllConverged()) << info.abbrev;

    auto r = ExecutePlan(*plan, Cluster::M510(6), exec);
    ASSERT_TRUE(r.ok()) << info.abbrev << ": " << r.status().ToString();
    ASSERT_EQ(r->op_stats.size(), plan->NumOperators());

    for (size_t i = 0; i < r->op_stats.size(); ++i) {
      const auto id = static_cast<LogicalPlan::OpId>(i);
      if (plan->op(id).type == OperatorType::kSource) continue;
      // Too few tuples to estimate a sustained rate (e.g. a window longer
      // than the horizon fired once or not at all): no steady-state
      // observation exists to compare against.
      if (r->op_stats[i].tuples_in < 20) continue;
      const double observed =
          static_cast<double>(r->op_stats[i].tuples_in) / exec.sim.duration_s;
      const analysis::RateInterval& in = ctx.props->ops[i].input_rate;
      EXPECT_TRUE(in.Contains(observed, /*rel_tol=*/0.5, /*abs_tol=*/20.0))
          << info.abbrev << " op '" << r->op_stats[i].name << "': observed "
          << observed << " ev/s outside derived [" << in.lo << ", " << in.hi
          << "]";
    }
  }
}

TEST(DataflowPropertyTest, StaticallyDeadSubgraphDeliversNothing) {
  // val is uniform in [0, 100): "val > 1000" is proven always false and
  // everything downstream statically dead. The simulator must agree.
  PlanBuilder b;
  auto src = b.Source("src", KeyValueStream(), PoissonArrival(5000.0));
  auto f = b.Filter("never", src, 1, FilterOp::kGt, Value(1000.0));
  auto m = b.Map("dead_map", f);
  b.Sink("sink", m);
  b.SkipAnalysis();  // E503 is error severity and would gate Build
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const analysis::AnalysisContext ctx = analysis::AnalysisContext::Make(*plan);
  ASSERT_TRUE(ctx.props->ops[f].filter_always_false);
  ASSERT_TRUE(ctx.props->ops[m].statically_dead);

  auto r = ExecutePlan(*plan, Cluster::M510(2), ShortRun(1.5));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->op_stats[f].tuples_in, 0);
  EXPECT_EQ(r->op_stats[f].tuples_out, 0);
  EXPECT_EQ(r->op_stats[m].tuples_in, 0);
  EXPECT_EQ(r->sink_tuples, 0);
}

TEST(DataflowPropertyTest, OverSaturatedOperatorSaturatesInSimulation) {
  // 1M ev/s into one filter instance: statically proven over-saturated
  // (W605 material); the simulated instance must actually pin near 100%.
  // The source runs 8 instances so generation itself is not the bottleneck.
  PlanBuilder b;
  auto src = b.Source("src", KeyValueStream(), PoissonArrival(1.0e6), 8);
  auto f = b.Filter("hot", src, 1, FilterOp::kGt, Value(50.0), 1);
  b.Sink("sink", f, 1);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const analysis::AnalysisContext ctx = analysis::AnalysisContext::Make(*plan);
  const analysis::RateInterval& in = ctx.props->ops[f].input_rate;
  EXPECT_GE(in.lo, 4.0e5) << "derived interval should prove saturation";

  auto r = ExecutePlan(*plan, Cluster::M510(2), ShortRun(1.5));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->op_stats[f].utilization, 0.9)
      << "statically over-saturated operator idled in simulation";
}

// The W704 proof claims a hash shuffle whose input is already
// hash-partitioned on the same provenance key at the same degree routes
// every tuple to the instance that produced it. Behavioral check: swapping
// that shuffle to forward partitioning leaves each instance's workload
// (and therefore per-instance utilization) exactly unchanged.
TEST(DataflowPropertyTest, ProvenRedundantShuffleMatchesForwardRouting) {
  auto build = [](Partitioning reshuffle_partitioning) {
    PlanBuilder b;
    auto src = b.Source("src", KeyValueStream(), PoissonArrival(20000.0), 2);
    WindowSpec win;
    win.type = WindowType::kTumbling;
    win.policy = WindowPolicy::kTime;
    win.duration_ms = 250.0;
    auto agg = b.WindowAggregate("agg", src, win, AggregateFn::kMax, 1, 0, 2);
    auto m = b.Map("reshuffle", agg, 2);
    b.WithPartitioning(m, reshuffle_partitioning);
    b.Sink("sink", m);
    return b.Build();
  };
  auto hashed = build(Partitioning::kHash);
  auto forwarded = build(Partitioning::kForward);
  ASSERT_TRUE(hashed.ok()) << hashed.status().ToString();
  ASSERT_TRUE(forwarded.ok()) << forwarded.status().ToString();

  constexpr size_t kReshuffleOp = 2;  // src=0, agg=1, reshuffle=2, sink=3
  const analysis::AnalysisContext ctx = analysis::AnalysisContext::Make(*hashed);
  ASSERT_TRUE(ctx.props->partitioning_stats.ok());
  ASSERT_TRUE(ctx.props->ops[kReshuffleOp].redundant_shuffle)
      << ctx.props->ToString(*hashed);

  const ExecutionOptions exec = ShortRun();
  auto rh = ExecutePlan(*hashed, Cluster::M510(4), exec);
  auto rf = ExecutePlan(*forwarded, Cluster::M510(4), exec);
  ASSERT_TRUE(rh.ok() && rf.ok());
  EXPECT_EQ(rh->sink_tuples, rf->sink_tuples);
  EXPECT_EQ(rh->op_stats[kReshuffleOp].tuples_in,
            rf->op_stats[kReshuffleOp].tuples_in);
  EXPECT_EQ(rh->op_stats[kReshuffleOp].tuples_out,
            rf->op_stats[kReshuffleOp].tuples_out);
  // Identical per-instance delivery => identical load *skew*. The absolute
  // busy time differs (the hash channel pays per-tuple shuffle cost — the
  // very cost W704's fix hint elides), but max/mean utilization is
  // invariant under a uniform per-tuple cost factor, so it only matches
  // when both variants route every tuple to the same instance.
  const auto skew = [](const OperatorRunStats& s) {
    return s.utilization > 0.0 ? s.max_instance_util / s.utilization : 1.0;
  };
  EXPECT_NEAR(skew(rh->op_stats[kReshuffleOp]),
              skew(rf->op_stats[kReshuffleOp]), 0.01);
}

TEST(DataflowPropertyTest, DeterministicVerdictPlansReproduceBitIdentically) {
  AppOptions options;
  options.event_rate = 10000.0;
  options.parallelism = 1;
  const ExecutionOptions exec = ShortRun(1.5);
  int deterministic_plans = 0;
  for (const AppInfo& info : AllApps()) {
    auto plan = MakeApp(info.id, options);
    ASSERT_TRUE(plan.ok()) << info.abbrev;
    const analysis::AnalysisContext ctx =
        analysis::AnalysisContext::Make(*plan);
    ASSERT_TRUE(ctx.props->determinism_stats.ok()) << info.abbrev;
    EXPECT_FALSE(ctx.props->verdict_reason.empty()) << info.abbrev;
    if (ctx.props->verdict != analysis::Determinism::kDeterministic) continue;
    ++deterministic_plans;
    auto r1 = ExecutePlan(*plan, Cluster::M510(3), exec);
    auto r2 = ExecutePlan(*plan, Cluster::M510(3), exec);
    ASSERT_TRUE(r1.ok() && r2.ok()) << info.abbrev;
    EXPECT_EQ(r1->sink_tuples, r2->sink_tuples) << info.abbrev;
    EXPECT_EQ(r1->events_processed, r2->events_processed) << info.abbrev;
    // NaN when no latency sample was taken (sink never fired in the short
    // horizon); NaN == NaN is still "identical" for this purpose.
    if (!std::isnan(r1->median_latency_s) || !std::isnan(r2->median_latency_s)) {
      EXPECT_DOUBLE_EQ(r1->median_latency_s, r2->median_latency_s)
          << info.abbrev;
    }
  }
  // At parallelism 1 the single-source linear apps must be provably
  // deterministic; if none are, the verdict is vacuous.
  EXPECT_GT(deterministic_plans, 0);
}

}  // namespace
}  // namespace pdsp
