#include "src/runtime/operators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

using testing::KeyValueStream;
using testing::PoissonArrival;

StreamElement MakeElement(std::vector<Value> values, double t) {
  StreamElement e;
  e.tuple.values = std::move(values);
  e.tuple.event_time = t;
  e.birth = t;
  return e;
}

// Builds a plan with one operator of interest and returns its instance.
std::unique_ptr<OperatorInstance> MakeAggInstance(WindowSpec win,
                                                  AggregateFn fn,
                                                  size_t agg_field,
                                                  size_t key_field) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100));
  auto a = b.WindowAggregate("agg", s, win, fn, agg_field, key_field);
  b.Sink("k", a);
  auto plan = b.Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  static LogicalPlan kept;  // keep alive for descriptor reference
  kept = std::move(*plan);
  auto aid = kept.FindOperator("agg");
  auto inst = CreateOperatorInstance(kept, *aid, 0, 1);
  EXPECT_TRUE(inst.ok()) << inst.status().ToString();
  return std::move(*inst);
}

TEST(EvaluateFilterTest, AllOps) {
  EXPECT_TRUE(EvaluateFilter(Value(3), FilterOp::kLt, Value(5)));
  EXPECT_TRUE(EvaluateFilter(Value(5), FilterOp::kLe, Value(5)));
  EXPECT_TRUE(EvaluateFilter(Value(7), FilterOp::kGt, Value(5)));
  EXPECT_TRUE(EvaluateFilter(Value(5), FilterOp::kGe, Value(5)));
  EXPECT_TRUE(EvaluateFilter(Value(5), FilterOp::kEq, Value(5)));
  EXPECT_TRUE(EvaluateFilter(Value(4), FilterOp::kNe, Value(5)));
  EXPECT_FALSE(EvaluateFilter(Value(6), FilterOp::kLt, Value(5)));
}

TEST(FilterExecTest, PassesAndDrops) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100));
  auto f = b.Filter("f", s, 1, FilterOp::kGt, Value(50.0));
  b.Sink("k", f);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  auto fid = plan->FindOperator("f");
  auto inst = CreateOperatorInstance(*plan, *fid, 0, 1);
  ASSERT_TRUE(inst.ok());

  std::vector<StreamElement> out;
  ASSERT_TRUE(
      (*inst)->Process(MakeElement({Value(1), Value(60.0)}, 0.0), 0, 0.0, &out)
          .ok());
  EXPECT_EQ(out.size(), 1u);
  ASSERT_TRUE(
      (*inst)->Process(MakeElement({Value(1), Value(40.0)}, 0.0), 0, 0.0, &out)
          .ok());
  EXPECT_EQ(out.size(), 1u);  // dropped
}

TEST(FilterExecTest, FieldBeyondArityIsError) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100));
  auto f = b.Filter("f", s, 1, FilterOp::kGt, Value(50.0));
  b.Sink("k", f);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  auto inst = CreateOperatorInstance(*plan, *plan->FindOperator("f"), 0, 1);
  ASSERT_TRUE(inst.ok());
  std::vector<StreamElement> out;
  // Tuple with only one value: filter field 1 is out of range.
  EXPECT_TRUE((*inst)
                  ->Process(MakeElement({Value(1)}, 0.0), 0, 0.0, &out)
                  .IsOutOfRange());
}

TEST(SourceInstanceIsInvalid, CreateFails) {
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  auto sid = plan->FindOperator("src");
  EXPECT_TRUE(CreateOperatorInstance(*plan, *sid, 0, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(TimeWindowAggTest, TumblingSumPerKey) {
  WindowSpec win;
  win.type = WindowType::kTumbling;
  win.policy = WindowPolicy::kTime;
  win.duration_ms = 1000.0;
  auto inst = MakeAggInstance(win, AggregateFn::kSum, 1, 0);

  std::vector<StreamElement> out;
  // Window [0,1): key 1 gets 10+20, key 2 gets 5.
  ASSERT_TRUE(inst->Process(MakeElement({Value(1), Value(10.0)}, 0.1), 0, 0.1,
                            &out).ok());
  ASSERT_TRUE(inst->Process(MakeElement({Value(1), Value(20.0)}, 0.5), 0, 0.5,
                            &out).ok());
  ASSERT_TRUE(inst->Process(MakeElement({Value(2), Value(5.0)}, 0.9), 0, 0.9,
                            &out).ok());
  EXPECT_TRUE(out.empty());  // nothing fires before the pane ends
  EXPECT_EQ(inst->NextTimerTime(), 1.0);
  inst->OnTimer(1.0, &out);
  ASSERT_EQ(out.size(), 2u);
  // Results: (key, agg), event_time = pane end.
  double sum_key1 = -1, sum_key2 = -1;
  for (const auto& e : out) {
    EXPECT_DOUBLE_EQ(e.tuple.event_time, 1.0);
    if (e.tuple.values[0].AsInt() == 1) sum_key1 = e.tuple.values[1].AsDouble();
    if (e.tuple.values[0].AsInt() == 2) sum_key2 = e.tuple.values[1].AsDouble();
  }
  EXPECT_DOUBLE_EQ(sum_key1, 30.0);
  EXPECT_DOUBLE_EQ(sum_key2, 5.0);
}

TEST(TimeWindowAggTest, BirthIsEarliestContributor) {
  WindowSpec win;
  win.duration_ms = 1000.0;
  auto inst = MakeAggInstance(win, AggregateFn::kSum, 1, 0);
  std::vector<StreamElement> out;
  StreamElement early = MakeElement({Value(1), Value(1.0)}, 0.2);
  early.birth = 0.05;  // produced earlier upstream
  ASSERT_TRUE(inst->Process(early, 0, 0.2, &out).ok());
  ASSERT_TRUE(inst->Process(MakeElement({Value(1), Value(2.0)}, 0.8), 0, 0.8,
                            &out).ok());
  inst->OnTimer(1.0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].birth, 0.05);
}

TEST(TimeWindowAggTest, SlidingElementInMultiplePanes) {
  WindowSpec win;
  win.type = WindowType::kSliding;
  win.duration_ms = 1000.0;
  win.slide_ratio = 0.5;  // slide 0.5s -> each element in 2 panes
  auto inst = MakeAggInstance(win, AggregateFn::kSum, 1, 0);
  std::vector<StreamElement> out;
  ASSERT_TRUE(inst->Process(MakeElement({Value(1), Value(10.0)}, 0.75), 0,
                            0.75, &out).ok());
  // Element at 0.75 belongs to panes [0.0,1.0) and [0.5,1.5).
  inst->OnTimer(2.0, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].tuple.values[1].AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(out[1].tuple.values[1].AsDouble(), 10.0);
}

TEST(TimeWindowAggTest, GlobalWindowHasNoKeyColumn) {
  WindowSpec win;
  win.duration_ms = 1000.0;
  auto inst = MakeAggInstance(win, AggregateFn::kAvg, 1,
                              OperatorDescriptor::kNoKey);
  std::vector<StreamElement> out;
  ASSERT_TRUE(inst->Process(MakeElement({Value(1), Value(10.0)}, 0.1), 0, 0.1,
                            &out).ok());
  ASSERT_TRUE(inst->Process(MakeElement({Value(2), Value(20.0)}, 0.2), 0, 0.2,
                            &out).ok());
  inst->OnTimer(1.0, &out);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].tuple.values.size(), 1u);  // only the aggregate
  EXPECT_DOUBLE_EQ(out[0].tuple.values[0].AsDouble(), 15.0);
}

TEST(TimeWindowAggTest, MinMaxFns) {
  for (auto [fn, expected] : std::vector<std::pair<AggregateFn, double>>{
           {AggregateFn::kMin, 3.0}, {AggregateFn::kMax, 9.0}}) {
    WindowSpec win;
    win.duration_ms = 1000.0;
    auto inst = MakeAggInstance(win, fn, 1, 0);
    std::vector<StreamElement> out;
    for (double v : {5.0, 3.0, 9.0}) {
      ASSERT_TRUE(inst->Process(MakeElement({Value(1), Value(v)}, 0.5), 0, 0.5,
                                &out).ok());
    }
    inst->OnTimer(1.0, &out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_DOUBLE_EQ(out[0].tuple.values[1].AsDouble(), expected);
  }
}

TEST(TimeWindowAggTest, FlushEmitsPendingPanes) {
  WindowSpec win;
  win.duration_ms = 1000.0;
  auto inst = MakeAggInstance(win, AggregateFn::kSum, 1, 0);
  std::vector<StreamElement> out;
  ASSERT_TRUE(inst->Process(MakeElement({Value(1), Value(1.0)}, 0.2), 0, 0.2,
                            &out).ok());
  EXPECT_GT(inst->StateSize(), 0u);
  inst->Flush(0.5, &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(inst->StateSize(), 0u);
}

TEST(CountWindowAggTest, FiresEveryLengthTuples) {
  WindowSpec win;
  win.policy = WindowPolicy::kCount;
  win.type = WindowType::kTumbling;
  win.length_tuples = 3;
  auto inst = MakeAggInstance(win, AggregateFn::kSum, 1, 0);
  std::vector<StreamElement> out;
  for (int i = 1; i <= 9; ++i) {
    ASSERT_TRUE(inst->Process(
        MakeElement({Value(1), Value(static_cast<double>(i))}, i * 0.1), 0,
        i * 0.1, &out).ok());
  }
  // Tumbling count window of 3: fires at tuples 3, 6, 9 with sums 6, 15, 24.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].tuple.values[1].AsDouble(), 6.0);
  EXPECT_DOUBLE_EQ(out[1].tuple.values[1].AsDouble(), 15.0);
  EXPECT_DOUBLE_EQ(out[2].tuple.values[1].AsDouble(), 24.0);
}

TEST(CountWindowAggTest, SlidingKeepsOverlap) {
  WindowSpec win;
  win.policy = WindowPolicy::kCount;
  win.type = WindowType::kSliding;
  win.length_tuples = 4;
  win.slide_ratio = 0.5;  // slide 2
  auto inst = MakeAggInstance(win, AggregateFn::kSum, 1, 0);
  std::vector<StreamElement> out;
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(inst->Process(
        MakeElement({Value(1), Value(static_cast<double>(i))}, i * 0.1), 0,
        i * 0.1, &out).ok());
  }
  // Window [1..4] fires sum=10; slide 2 -> [3..6] fires sum=18.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].tuple.values[1].AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(out[1].tuple.values[1].AsDouble(), 18.0);
}

TEST(CountWindowAggTest, PerKeyCountsAreIndependent) {
  WindowSpec win;
  win.policy = WindowPolicy::kCount;
  win.length_tuples = 2;
  auto inst = MakeAggInstance(win, AggregateFn::kSum, 1, 0);
  std::vector<StreamElement> out;
  ASSERT_TRUE(inst->Process(MakeElement({Value(1), Value(1.0)}, 0.1), 0, 0.1,
                            &out).ok());
  ASSERT_TRUE(inst->Process(MakeElement({Value(2), Value(2.0)}, 0.2), 0, 0.2,
                            &out).ok());
  EXPECT_TRUE(out.empty());  // each key has only 1 element
  ASSERT_TRUE(inst->Process(MakeElement({Value(1), Value(3.0)}, 0.3), 0, 0.3,
                            &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tuple.values[0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(out[0].tuple.values[1].AsDouble(), 4.0);
}

std::unique_ptr<OperatorInstance> MakeJoinInstance(WindowSpec win) {
  PlanBuilder b;
  auto s1 = b.Source("s1", KeyValueStream(), PoissonArrival(100));
  auto s2 = b.Source("s2", KeyValueStream(), PoissonArrival(100));
  auto j = b.WindowJoin("j", s1, s2, 0, 0, win);
  b.Sink("k", j);
  auto plan = b.Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  static LogicalPlan kept;
  kept = std::move(*plan);
  auto inst = CreateOperatorInstance(kept, *kept.FindOperator("j"), 0, 1);
  EXPECT_TRUE(inst.ok());
  return std::move(*inst);
}

TEST(WindowJoinTest, MatchesEqualKeysWithinWindow) {
  WindowSpec win;
  win.duration_ms = 1000.0;
  auto inst = MakeJoinInstance(win);
  std::vector<StreamElement> out;
  // Left key=7 at t=0.1; right key=7 at t=0.5 -> match.
  ASSERT_TRUE(inst->Process(MakeElement({Value(7), Value(1.0)}, 0.1), 0, 0.1,
                            &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(inst->Process(MakeElement({Value(7), Value(2.0)}, 0.5), 1, 0.5,
                            &out).ok());
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].tuple.values.size(), 4u);
  EXPECT_EQ(out[0].tuple.values[0].AsInt(), 7);       // l_key
  EXPECT_DOUBLE_EQ(out[0].tuple.values[1].AsDouble(), 1.0);  // l_val
  EXPECT_DOUBLE_EQ(out[0].tuple.values[3].AsDouble(), 2.0);  // r_val
  EXPECT_DOUBLE_EQ(out[0].tuple.event_time, 0.5);
  EXPECT_DOUBLE_EQ(out[0].birth, 0.1);
}

TEST(WindowJoinTest, DifferentKeysDoNotMatch) {
  WindowSpec win;
  win.duration_ms = 1000.0;
  auto inst = MakeJoinInstance(win);
  std::vector<StreamElement> out;
  ASSERT_TRUE(inst->Process(MakeElement({Value(7), Value(1.0)}, 0.1), 0, 0.1,
                            &out).ok());
  ASSERT_TRUE(inst->Process(MakeElement({Value(8), Value(2.0)}, 0.2), 1, 0.2,
                            &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(WindowJoinTest, ExpiredTuplesDoNotMatch) {
  WindowSpec win;
  win.duration_ms = 1000.0;
  auto inst = MakeJoinInstance(win);
  std::vector<StreamElement> out;
  ASSERT_TRUE(inst->Process(MakeElement({Value(7), Value(1.0)}, 0.1), 0, 0.1,
                            &out).ok());
  // Right arrives 2 seconds later: left tuple fell out of the window.
  ASSERT_TRUE(inst->Process(MakeElement({Value(7), Value(2.0)}, 2.1), 1, 2.1,
                            &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(WindowJoinTest, MultipleMatchesEmitCrossProduct) {
  WindowSpec win;
  win.duration_ms = 1000.0;
  auto inst = MakeJoinInstance(win);
  std::vector<StreamElement> out;
  for (double v : {1.0, 2.0, 3.0}) {
    ASSERT_TRUE(inst->Process(MakeElement({Value(7), Value(v)}, 0.1), 0, 0.1,
                              &out).ok());
  }
  ASSERT_TRUE(inst->Process(MakeElement({Value(7), Value(9.0)}, 0.5), 1, 0.5,
                            &out).ok());
  EXPECT_EQ(out.size(), 3u);
}

TEST(WindowJoinTest, CountPolicyBoundsBuffer) {
  WindowSpec win;
  win.policy = WindowPolicy::kCount;
  win.length_tuples = 2;
  auto inst = MakeJoinInstance(win);
  std::vector<StreamElement> out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(inst->Process(
        MakeElement({Value(7), Value(static_cast<double>(i))}, i * 0.1), 0,
        i * 0.1, &out).ok());
  }
  // Only the last 2 left tuples remain buffered.
  EXPECT_EQ(inst->StateSize(), 2u);
  ASSERT_TRUE(inst->Process(MakeElement({Value(7), Value(99.0)}, 1.5), 1, 1.5,
                            &out).ok());
  EXPECT_EQ(out.size(), 2u);
}

TEST(WindowJoinTest, BadPortRejected) {
  WindowSpec win;
  auto inst = MakeJoinInstance(win);
  std::vector<StreamElement> out;
  EXPECT_TRUE(inst->Process(MakeElement({Value(1), Value(1.0)}, 0.1), 2, 0.1,
                            &out).IsOutOfRange());
}

TEST(FlatMapTest, MeanFanoutRespected) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100));
  auto fm = b.FlatMap("fm", s, 2.5);
  b.Sink("k", fm);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  auto inst = CreateOperatorInstance(*plan, *plan->FindOperator("fm"), 0, 5);
  ASSERT_TRUE(inst.ok());
  std::vector<StreamElement> out;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE((*inst)
                    ->Process(MakeElement({Value(1), Value(1.0)}, 0.0), 0, 0.0,
                              &out)
                    .ok());
  }
  EXPECT_NEAR(static_cast<double>(out.size()) / n, 2.5, 0.05);
}

TEST(UdoExecTest, SampleKindDropsFraction) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100));
  auto u = b.Udo("u", s, "sample", 1.0, 0.3, false);
  b.Sink("k", u);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  auto inst = CreateOperatorInstance(*plan, *plan->FindOperator("u"), 0, 5);
  ASSERT_TRUE(inst.ok());
  std::vector<StreamElement> out;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE((*inst)
                    ->Process(MakeElement({Value(1), Value(1.0)}, 0.0), 0, 0.0,
                              &out)
                    .ok());
  }
  EXPECT_NEAR(static_cast<double>(out.size()) / n, 0.3, 0.03);
}

TEST(UdoExecTest, UnknownKindFailsAtCreation) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100));
  auto u = b.Udo("u", s, "no_such_kind");
  b.Sink("k", u);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(CreateOperatorInstance(*plan, *plan->FindOperator("u"), 0, 1)
                  .status()
                  .IsNotFound());
}

TEST(SinkExecTest, PassesThrough) {
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  auto inst = CreateOperatorInstance(*plan, plan->SinkId(), 0, 1);
  ASSERT_TRUE(inst.ok());
  std::vector<StreamElement> out;
  ASSERT_TRUE((*inst)
                  ->Process(MakeElement({Value(1), Value(1.0)}, 0.3), 0, 0.3,
                            &out)
                  .ok());
  EXPECT_EQ(out.size(), 1u);
}

}  // namespace
}  // namespace pdsp
