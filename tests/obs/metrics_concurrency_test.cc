// Race tests for the metrics layer: MergeFrom and histogram merges racing
// with snapshot/serialization reads, the exact interleaving the sweep
// monitor creates (workers fold per-cell registries while the sampler sums
// counters and the CLI dumps JSON). Runs in the regular suite as a
// functional test and in the TSan tree (build-tsan) as a data-race probe.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/stats.h"
#include "src/obs/metrics.h"

namespace pdsp {
namespace obs {
namespace {

TEST(MetricsConcurrencyTest, MergeFromWhileSummingAndDumping) {
  MetricsRegistry dst;
  constexpr int kMerges = 400;
  std::atomic<bool> done{false};

  std::thread merger([&] {
    for (int i = 0; i < kMerges; ++i) {
      MetricsRegistry src;
      src.GetCounter("pdsp.test.tuples")->Add(3);
      src.GetGauge("pdsp.test.rate")->Set(static_cast<double>(i));
      src.GetHistogram("pdsp.test.latency")->Observe(0.001 * (i + 1));
      dst.MergeFrom(src);
    }
    done.store(true, std::memory_order_release);
  });

  // Reader side: what SweepProgress::Snapshot does (sum counters by name)
  // plus what artifact export does (full JSON dump), concurrently.
  int64_t last_sum = 0;
  while (!done.load(std::memory_order_acquire)) {
    int64_t sum = 0;
    for (const std::string& name : dst.Names()) {
      sum += dst.CounterValue(name);
    }
    // Counters only ever grow; a decrease would mean a torn read.
    EXPECT_GE(sum, last_sum);
    last_sum = sum;
    (void)dst.ToJson();
  }
  merger.join();

  EXPECT_EQ(dst.CounterValue("pdsp.test.tuples"), 3 * kMerges);
  EXPECT_EQ(dst.GetHistogram("pdsp.test.latency")->Snapshot().TotalCount(), kMerges);
}

TEST(MetricsConcurrencyTest, HistogramObserveMergeAndSnapshotRace) {
  HistogramMetric hist;
  constexpr int kPerThread = 2000;
  std::atomic<bool> done{false};

  std::thread observer([&] {
    for (int i = 0; i < kPerThread; ++i) hist.Observe(0.5 + i % 7);
  });
  std::thread merger([&] {
    for (int i = 0; i < kPerThread / 100; ++i) {
      ExpHistogram batch;
      for (int j = 0; j < 100; ++j) batch.Add(1.5 + j % 5);
      hist.Merge(batch);
    }
    done.store(true, std::memory_order_release);
  });

  int64_t last_count = 0;
  while (!done.load(std::memory_order_acquire)) {
    const ExpHistogram snap = hist.Snapshot();
    EXPECT_GE(snap.TotalCount(), last_count);
    last_count = snap.TotalCount();
  }
  observer.join();
  merger.join();
  EXPECT_EQ(hist.Snapshot().TotalCount(), 2 * kPerThread);
}

TEST(MetricsConcurrencyTest, ConcurrentWorkersMergeIntoOneRegistry) {
  // The sweep-join shape: N workers each fold their per-cell registry into
  // the shared result registry (MergeFrom is serialized internally; the
  // per-handle updates before it are not).
  MetricsRegistry merged;
  constexpr int kWorkers = 4;
  constexpr int kCellsPerWorker = 50;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&merged, w] {
      for (int c = 0; c < kCellsPerWorker; ++c) {
        MetricsRegistry cell;
        cell.GetCounter("pdsp.sim.sink_tuples")->Add(10 + w);
        cell.GetHistogram("pdsp.sim.latency")->Observe(0.01 * (c + 1));
        merged.MergeFrom(cell);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  int64_t expected = 0;
  for (int w = 0; w < kWorkers; ++w) expected += (10 + w) * kCellsPerWorker;
  EXPECT_EQ(merged.CounterValue("pdsp.sim.sink_tuples"), expected);
  EXPECT_EQ(merged.GetHistogram("pdsp.sim.latency")->Snapshot().TotalCount(),
            kWorkers * kCellsPerWorker);
}

}  // namespace
}  // namespace obs
}  // namespace pdsp
