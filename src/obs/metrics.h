// pdsp::obs metrics layer: a named registry of counters, gauges and
// exponential-bucket histograms, cheap enough to stay on by default (one
// relaxed atomic op per update on the hot path) and dumpable as JSON for the
// per-run artifact bundles. Metric names follow `pdsp.<module>.<name>`
// (e.g. pdsp.sim.sink_tuples); see DESIGN.md "Observability".

#ifndef PDSP_OBS_METRICS_H_
#define PDSP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/store/json.h"

namespace pdsp {
namespace obs {

/// \brief Monotonically increasing integer metric.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Last-write-wins floating-point metric.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Distribution metric backed by ExpHistogram (heavy-tail friendly);
/// observations are mutex-guarded, so keep it off per-tuple hot paths and
/// observe per batch / per sink record instead.
class HistogramMetric {
 public:
  explicit HistogramMetric(ExpHistogram hist = ExpHistogram())
      : hist_(std::move(hist)) {}

  void Observe(double v) {
    MutexLock lock(mu_);
    hist_.Add(v);
  }

  /// Snapshot copy for querying without holding the lock.
  ExpHistogram Snapshot() const {
    MutexLock lock(mu_);
    return hist_;
  }

  /// Folds another histogram's buckets in (identical geometry required;
  /// see ExpHistogram::Merge).
  void Merge(const ExpHistogram& other) {
    MutexLock lock(mu_);
    hist_.Merge(other);
  }

 private:
  mutable Mutex mu_;
  ExpHistogram hist_ PDSP_GUARDED_BY(mu_);
};

/// \brief Named metric registry. Get* registers on first use and returns a
/// stable handle that stays valid for the registry's lifetime; updates
/// through handles never take the registry lock.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `hist` is the geometry used if the metric does not exist yet.
  HistogramMetric* GetHistogram(const std::string& name,
                                ExpHistogram hist = ExpHistogram());

  /// Convenience lookups for tests/consumers; 0 / NaN-free defaults.
  int64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;

  /// Sorted names of all registered metrics.
  std::vector<std::string> Names() const;

  /// Folds another registry into this one: counters add, histograms merge
  /// (identical geometry required — see ExpHistogram::Merge), gauges are
  /// last-write-wins in call order. Used by the sweep scheduler to combine
  /// per-worker registries at join; callers make the result deterministic
  /// by merging in canonical (cell-index) order.
  void MergeFrom(const MetricsRegistry& other);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// mean, min, max, p50, p95, p99, buckets: [{lo, hi, count}, ...]}}}.
  Json ToJson() const;

  /// Pretty-printed ToJson().
  std::string DumpJson() const { return ToJson().Dump(2); }

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PDSP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      PDSP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_
      PDSP_GUARDED_BY(mu_);
};

/// Canonical metric name: "pdsp.<module>.<name>".
std::string MetricName(const std::string& module, const std::string& name);

}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_METRICS_H_
