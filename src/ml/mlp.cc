#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "src/ml/linalg.h"
#include "src/ml/models.h"

namespace pdsp {

namespace {

// One dense layer with Adam state.
struct Layer {
  Matrix w;
  Vector b;
  Matrix w_m, w_v;  // Adam moments
  Vector b_m, b_v;

  Layer(size_t out, size_t in, Rng* rng)
      : w(Matrix::GlorotRandom(out, in, rng)),
        b(out, 0.0),
        w_m(out, in),
        w_v(out, in),
        b_m(out, 0.0),
        b_v(out, 0.0) {}
};

void AdamStep(Vector* param, Vector* m, Vector* v, const Vector& grad,
              double lr, int t) {
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  const double bc1 = 1.0 - std::pow(kBeta1, t);
  const double bc2 = 1.0 - std::pow(kBeta2, t);
  for (size_t i = 0; i < param->size(); ++i) {
    (*m)[i] = kBeta1 * (*m)[i] + (1 - kBeta1) * grad[i];
    (*v)[i] = kBeta2 * (*v)[i] + (1 - kBeta2) * grad[i] * grad[i];
    (*param)[i] -=
        lr * ((*m)[i] / bc1) / (std::sqrt((*v)[i] / bc2) + kEps);
  }
}

}  // namespace

struct MlpModel::Impl {
  std::vector<Layer> layers;
  int adam_t = 0;

  // Forward pass keeping post-activation values per layer.
  double Forward(const Vector& x, std::vector<Vector>* activations) const {
    activations->clear();
    activations->push_back(x);
    Vector h = x;
    for (size_t l = 0; l < layers.size(); ++l) {
      Vector z = layers[l].w.MatVec(h);
      for (size_t i = 0; i < z.size(); ++i) z[i] += layers[l].b[i];
      if (l + 1 < layers.size()) {
        for (double& v : z) v = std::max(0.0, v);  // ReLU
      }
      activations->push_back(z);
      h = activations->back();
    }
    return h[0];
  }

  // Accumulates gradients for one example; dloss = d(loss)/d(output).
  void Backward(const std::vector<Vector>& activations, double dloss,
                std::vector<Matrix>* w_grads,
                std::vector<Vector>* b_grads) const {
    Vector delta{dloss};
    for (size_t l = layers.size(); l-- > 0;) {
      const Vector& input = activations[l];
      // dW = delta * input^T ; db = delta.
      Matrix& wg = (*w_grads)[l];
      Vector& bg = (*b_grads)[l];
      for (size_t i = 0; i < delta.size(); ++i) {
        bg[i] += delta[i];
        for (size_t j = 0; j < input.size(); ++j) {
          wg.at(i, j) += delta[i] * input[j];
        }
      }
      if (l == 0) break;
      // Propagate: delta_prev = W^T delta, gated by ReLU activity of the
      // previous layer's output (activations[l] are post-ReLU for l>0).
      Vector prev = layers[l].w.TransposedMatVec(delta);
      for (size_t j = 0; j < prev.size(); ++j) {
        if (activations[l][j] <= 0.0) prev[j] = 0.0;
      }
      delta = std::move(prev);
    }
  }
};

MlpModel::MlpModel() : impl_(new Impl) {}
MlpModel::~MlpModel() = default;

Result<TrainReport> MlpModel::Fit(const Dataset& train, const Dataset& val,
                                  const TrainOptions& options) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(options.seed);
  standardizer_ = Standardizer();
  standardizer_.Fit(train);

  // Build layer stack [d, hidden..., 1].
  impl_->layers.clear();
  impl_->adam_t = 0;
  size_t in_dim = train.samples[0].flat.size();
  for (int h : options.mlp_hidden) {
    impl_->layers.emplace_back(static_cast<size_t>(h), in_dim, &rng);
    in_dim = static_cast<size_t>(h);
  }
  impl_->layers.emplace_back(1, in_dim, &rng);

  // Pre-standardize.
  std::vector<Vector> xs, val_xs;
  Vector ys, val_ys;
  for (const PlanSample& s : train.samples) {
    xs.push_back(standardizer_.Apply(s.flat));
    ys.push_back(std::log(s.latency_s));
  }
  const Dataset& eval = val.empty() ? train : val;
  for (const PlanSample& s : eval.samples) {
    val_xs.push_back(standardizer_.Apply(s.flat));
    val_ys.push_back(std::log(s.latency_s));
  }

  std::vector<size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);

  TrainReport report;
  double best_val = 1e300;
  std::vector<Layer> best_layers = impl_->layers;
  int stall = 0;

  std::vector<Vector> activations;
  std::vector<Matrix> w_grads;
  std::vector<Vector> b_grads;
  for (const Layer& l : impl_->layers) {
    w_grads.emplace_back(l.w.rows(), l.w.cols());
    b_grads.emplace_back(l.b.size(), 0.0);
  }

  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    // Fisher-Yates shuffle.
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int64_t>(i) - 1))]);
    }
    for (size_t start = 0; start < xs.size();
         start += static_cast<size_t>(options.batch_size)) {
      const size_t end = std::min(
          xs.size(), start + static_cast<size_t>(options.batch_size));
      for (auto& g : w_grads) g = Matrix(g.rows(), g.cols());
      for (auto& g : b_grads) g.assign(g.size(), 0.0);
      for (size_t k = start; k < end; ++k) {
        const size_t idx = order[k];
        const double pred = impl_->Forward(xs[idx], &activations);
        const double dloss = 2.0 * (pred - ys[idx]) /
                             static_cast<double>(end - start);
        impl_->Backward(activations, dloss, &w_grads, &b_grads);
      }
      ++impl_->adam_t;
      for (size_t l = 0; l < impl_->layers.size(); ++l) {
        AdamStep(&impl_->layers[l].w.data(), &impl_->layers[l].w_m.data(),
                 &impl_->layers[l].w_v.data(), w_grads[l].data(),
                 options.learning_rate, impl_->adam_t);
        AdamStep(&impl_->layers[l].b, &impl_->layers[l].b_m,
                 &impl_->layers[l].b_v, b_grads[l], options.learning_rate,
                 impl_->adam_t);
      }
    }
    ++report.epochs_run;

    // Validation loss + early stopping.
    double val_loss = 0.0;
    for (size_t i = 0; i < val_xs.size(); ++i) {
      const double err =
          impl_->Forward(val_xs[i], &activations) - val_ys[i];
      val_loss += err * err;
    }
    val_loss /= static_cast<double>(val_xs.size());
    if (val_loss < best_val - 1e-6) {
      best_val = val_loss;
      best_layers = impl_->layers;
      stall = 0;
    } else if (++stall >= options.patience) {
      report.early_stopped = true;
      break;
    }
  }
  impl_->layers = std::move(best_layers);
  report.final_val_loss = best_val;
  report.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

Result<double> MlpModel::PredictLatency(const PlanSample& sample) const {
  if (impl_->layers.empty()) return Status::FailedPrecondition("not fitted");
  std::vector<Vector> activations;
  const double log_latency =
      impl_->Forward(standardizer_.Apply(sample.flat), &activations);
  return std::exp(std::clamp(log_latency, -12.0, 12.0));
}

}  // namespace pdsp
