// Property tests over the simulator: invariants that must hold for any
// structure, parallelism degree and cluster — conservation of tuples,
// ordered percentiles, bounded utilization, determinism, and monotone
// virtual time.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/harness/synthetic_suite.h"
#include "src/sim/simulation.h"

namespace pdsp {
namespace {

using SimCase = std::tuple<SyntheticStructure, int>;

class SimInvariants : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimInvariants, HoldAcrossStructuresAndParallelism) {
  const auto [structure, parallelism] = GetParam();
  CanonicalOptions copt;
  copt.event_rate = 20000.0;
  copt.parallelism = parallelism;
  copt.window_ms = 500.0;
  auto plan = MakeCanonicalSynthetic(structure, copt);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  ExecutionOptions exec;
  exec.sim.duration_s = 2.5;
  exec.sim.warmup_s = 0.5;
  exec.sim.seed = 99;
  auto r = ExecutePlan(*plan, Cluster::M510(6), exec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Conservation / sanity.
  EXPECT_GT(r->source_tuples, 0);
  EXPECT_GT(r->sink_tuples, 0) << SyntheticStructureToString(structure);
  // Sources produce roughly rate x duration x num_sources.
  const double expected_src = 20000.0 * 2.5 * plan->SourceIds().size();
  EXPECT_NEAR(static_cast<double>(r->source_tuples), expected_src,
              expected_src * 0.1);

  // Ordered percentiles, strictly positive latency.
  EXPECT_GT(r->median_latency_s, 0.0);
  EXPECT_LE(r->median_latency_s, r->p95_latency_s + 1e-12);
  EXPECT_LE(r->p95_latency_s, r->p99_latency_s + 1e-12);

  // Virtual time covers the generation horizon (plus drain).
  EXPECT_GE(r->virtual_time_end, exec.sim.duration_s);
  EXPECT_TRUE(std::isfinite(r->virtual_time_end));

  // Per-operator stats are coherent.
  ASSERT_EQ(r->op_stats.size(), plan->NumOperators());
  for (const OperatorRunStats& s : r->op_stats) {
    EXPECT_GE(s.tuples_in, 0);
    EXPECT_GE(s.tuples_out, 0);
    EXPECT_GE(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.1) << s.name;
    EXPECT_GE(s.max_instance_util + 1e-12, s.utilization) << s.name;
    EXPECT_GE(s.busy_time_s, 0.0);
  }

  // Filters never amplify.
  for (size_t op = 0; op < plan->NumOperators(); ++op) {
    if (plan->op(static_cast<LogicalPlan::OpId>(op)).type ==
        OperatorType::kFilter) {
      EXPECT_LE(r->op_stats[op].tuples_out, r->op_stats[op].tuples_in);
    }
  }

  // Determinism: identical rerun.
  auto r2 = ExecutePlan(*plan, Cluster::M510(6), exec);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r->sink_tuples, r2->sink_tuples);
  EXPECT_EQ(r->events_processed, r2->events_processed);
  EXPECT_DOUBLE_EQ(r->median_latency_s, r2->median_latency_s);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimInvariants,
    ::testing::Combine(
        ::testing::Values(SyntheticStructure::kLinear,
                          SyntheticStructure::kChain3Filters,
                          SyntheticStructure::kAggregation,
                          SyntheticStructure::kFlatMapChain,
                          SyntheticStructure::kTwoWayJoin,
                          SyntheticStructure::kFilterJoinAgg),
        ::testing::Values(1, 4, 16)));

TEST(SimMonotonicityTest, MoreLoadNeverReducesSourceWork) {
  // Doubling the event rate must roughly double generated tuples.
  CanonicalOptions copt;
  copt.parallelism = 4;
  ExecutionOptions exec;
  exec.sim.duration_s = 2.0;
  exec.sim.warmup_s = 0.5;
  int64_t prev = 0;
  for (double rate : {5000.0, 10000.0, 20000.0}) {
    copt.event_rate = rate;
    auto plan = MakeCanonicalSynthetic(SyntheticStructure::kLinear, copt);
    ASSERT_TRUE(plan.ok());
    auto r = ExecutePlan(*plan, Cluster::M510(6), exec);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r->source_tuples, prev * 3 / 2);
    prev = r->source_tuples;
  }
}

TEST(SimLatencyFloorTest, LatencyIncludesWindowResidence) {
  // With a tumbling window of W the mean residence is ~W/2; the median
  // latency must be at least that (paper's latency definition).
  for (double window_ms : {250.0, 1000.0}) {
    CanonicalOptions copt;
    copt.event_rate = 10000.0;
    copt.parallelism = 4;
    copt.window_ms = window_ms;
    auto plan = MakeCanonicalSynthetic(SyntheticStructure::kLinear, copt);
    ASSERT_TRUE(plan.ok());
    ExecutionOptions exec;
    exec.sim.duration_s = 3.0;
    exec.sim.warmup_s = 0.75;
    auto r = ExecutePlan(*plan, Cluster::M510(6), exec);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r->median_latency_s, window_ms / 1000.0 * 0.4);
    EXPECT_LT(r->median_latency_s, window_ms / 1000.0 * 3.0);
  }
}

TEST(SimClusterSpeedTest, SpeedFactorScalesBusyTime) {
  // The same saturating workload must show lower utilization on the faster
  // EPYC nodes than on m510 nodes.
  CanonicalOptions copt;
  copt.event_rate = 100000.0;
  copt.parallelism = 2;
  auto plan = MakeCanonicalSynthetic(SyntheticStructure::kLinear, copt);
  ASSERT_TRUE(plan.ok());
  ExecutionOptions exec;
  exec.sim.duration_s = 2.0;
  exec.sim.warmup_s = 0.5;
  auto slow = ExecutePlan(*plan, Cluster::M510(4), exec);
  auto fast = ExecutePlan(*plan, Cluster::C6525(4), exec);
  ASSERT_TRUE(slow.ok() && fast.ok());
  // Compare the source operator's utilization.
  EXPECT_GT(slow->op_stats[0].utilization,
            fast->op_stats[0].utilization * 1.15);
}

}  // namespace
}  // namespace pdsp
