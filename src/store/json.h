// Minimal JSON value model + writer + recursive-descent parser, used by the
// run store (the library's analogue of PDSP-Bench's MongoDB workload
// database). Self-contained: no third-party dependency, no exceptions.
//
// Supported: objects, arrays, strings (with \uXXXX escapes for BMP code
// points), doubles/integers, booleans, null. Numbers round-trip through
// double (adequate for this store's counters and metrics).

#ifndef PDSP_STORE_JSON_H_
#define PDSP_STORE_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace pdsp {

/// \brief A JSON document node.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double v);
  static Json Int(int64_t v) { return Number(static_cast<double>(v)); }
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }

  // Array access.
  size_t size() const { return array_.size(); }
  const Json& at(size_t i) const { return array_.at(i); }
  void Append(Json v) { array_.push_back(std::move(v)); }

  // Object access.
  bool Has(const std::string& key) const { return object_.count(key) != 0; }
  /// Returns the member or a shared null node.
  const Json& operator[](const std::string& key) const;
  void Set(const std::string& key, Json v) { object_[key] = std::move(v); }
  const std::map<std::string, Json>& members() const { return object_; }

  // Checked getters for parsing stored documents.
  Result<double> GetNumber(const std::string& key) const;
  Result<int64_t> GetInt(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;
  Result<bool> GetBool(const std::string& key) const;

  /// Serializes; `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  /// Parses a complete document (trailing whitespace allowed).
  static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace pdsp

#endif  // PDSP_STORE_JSON_H_
