#include "src/ml/datagen.h"

#include <chrono>
#include <cmath>

namespace pdsp {

Result<DataGenResult> GenerateTrainingData(const DataGenOptions& options,
                                           const Cluster& cluster) {
  if (options.num_samples < 1) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  const std::vector<SyntheticStructure>& structures =
      options.structures.empty() ? AllSyntheticStructures()
                                 : options.structures;

  QueryGenerator generator(options.query, options.seed);
  Rng rng(options.seed * 1315423911ULL + 17);
  DataGenResult result;

  int attempts = 0;
  const int max_attempts = options.num_samples * 4 + 32;
  while (static_cast<int>(result.dataset.size()) < options.num_samples &&
         attempts < max_attempts) {
    ++attempts;
    const SyntheticStructure structure = rng.Choice(structures);
    PDSP_ASSIGN_OR_RETURN(LogicalPlan plan, generator.Generate(structure));

    // One parallelism assignment per query, drawn from the strategy.
    PDSP_ASSIGN_OR_RETURN(
        auto assignments,
        EnumerateParallelism(plan, options.strategy, options.enumeration,
                             &rng));
    if (assignments.empty()) {
      return Status::Internal("enumeration produced no assignments");
    }
    const size_t pick = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(assignments.size()) - 1));
    PDSP_RETURN_NOT_OK(ApplyParallelism(&plan, assignments[pick]));

    ExecutionOptions exec = options.execution;
    exec.sim.seed =
        options.seed * 2654435761ULL + static_cast<uint64_t>(attempts);
    const auto t0 = std::chrono::steady_clock::now();
    auto sim = ExecutePlan(plan, cluster, exec);
    result.collection_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!sim.ok()) {
      // Pathological draws (e.g. join cascades that amplify beyond the
      // simulator's tuple budget) are discarded, not fatal — the paper's
      // generator likewise skips invalid workloads.
      if (sim.status().IsResourceExhausted()) {
        ++result.discarded;
        continue;
      }
      return sim.status();
    }
    if (sim->sink_tuples == 0 || std::isnan(sim->median_latency_s) ||
        sim->median_latency_s <= 0.0) {
      ++result.discarded;
      continue;
    }
    PDSP_ASSIGN_OR_RETURN(
        PlanSample sample,
        EncodeSample(plan, cluster, sim->median_latency_s,
                     static_cast<int>(structure)));
    result.dataset.samples.push_back(std::move(sample));
  }
  if (result.dataset.empty()) {
    return Status::Internal("no query produced usable training data");
  }
  return result;
}

}  // namespace pdsp
