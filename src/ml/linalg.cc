#include "src/ml/linalg.h"

#include <cassert>
#include <cmath>

namespace pdsp {

Matrix Matrix::GlorotRandom(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  const double scale = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : m.data_) v = rng->Uniform(-scale, scale);
  return m;
}

Vector Matrix::MatVec(const Vector& x) const {
  assert(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

Vector Matrix::TransposedMatVec(const Vector& x) const {
  assert(x.size() == rows_);
  Vector y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

Result<Matrix> MatMul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("matmul dimension mismatch");
  }
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

Result<Vector> CholeskySolve(Matrix a, Vector b, double ridge) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::InvalidArgument("cholesky needs square A matching b");
  }
  const size_t n = a.rows();
  for (size_t i = 0; i < n; ++i) a.at(i, i) += ridge;

  // In-place lower-triangular factorization A = L L^T.
  for (size_t j = 0; j < n; ++j) {
    double diag = a.at(j, j);
    for (size_t k = 0; k < j; ++k) diag -= a.at(j, k) * a.at(j, k);
    if (diag <= 0.0) {
      return Status::FailedPrecondition("matrix not positive definite");
    }
    a.at(j, j) = std::sqrt(diag);
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a.at(i, j);
      for (size_t k = 0; k < j; ++k) sum -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = sum / a.at(j, j);
    }
  }
  // Forward substitution L y = b.
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= a.at(i, k) * b[k];
    b[i] = sum / a.at(i, i);
  }
  // Back substitution L^T x = y.
  for (size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= a.at(k, ii) * b[k];
    b[ii] = sum / a.at(ii, ii);
  }
  return b;
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void Axpy(double alpha, const Vector& x, Vector* y) {
  assert(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vector* x) {
  for (double& v : *x) v *= alpha;
}

}  // namespace pdsp
