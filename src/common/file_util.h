// Small filesystem helpers shared by every writer of results/ artifacts:
// atomic whole-file replacement (tmp + rename, so readers and concurrent
// writers never observe a torn file) and atomic single-line appends for
// append-only logs such as the run ledger.

#ifndef PDSP_COMMON_FILE_UTIL_H_
#define PDSP_COMMON_FILE_UTIL_H_

#include <string>

#include "src/common/status.h"

namespace pdsp {

/// Creates `path`'s parent directories (no-op when it has none or they
/// already exist).
Status CreateParentDirectories(const std::string& path);

/// Renames `tmp` onto `path` (atomic on POSIX within one filesystem).
Status AtomicRename(const std::string& tmp, const std::string& path);

/// Writes `text` to `path` directly (non-atomic; prefer the Atomic variant
/// for anything a reader may race with).
Status WriteTextFile(const std::string& path, const std::string& text);

/// Writes `text` to `<path>.tmp` and renames it into place, creating parent
/// directories, so a crashed or concurrent writer never leaves a torn file
/// behind.
Status WriteTextFileAtomic(const std::string& path, const std::string& text);

/// Appends `line` (a trailing '\n' is added when missing) to `path` with a
/// single O_APPEND write, creating the file and parent directories if
/// needed. POSIX guarantees O_APPEND writes are not interleaved, so
/// concurrent appenders produce intact lines — the property the run ledger
/// relies on.
Status AppendLineAtomic(const std::string& path, const std::string& line);

/// Reads the whole file into a string.
Result<std::string> ReadTextFile(const std::string& path);

}  // namespace pdsp

#endif  // PDSP_COMMON_FILE_UTIL_H_
