#include "src/analysis/dataflow.h"

namespace pdsp {
namespace analysis {

const char* DataflowDirectionToString(DataflowDirection d) {
  switch (d) {
    case DataflowDirection::kForward:
      return "forward";
    case DataflowDirection::kBackward:
      return "backward";
  }
  return "?";
}

int ProducerChannelsInto(const AnalysisContext& ctx, LogicalPlan::OpId op) {
  // How many producer tasks can deliver to ONE instance of `op`: a forward
  // edge pins each consumer instance to a single producer instance; hash
  // and rebalance edges let every producer instance reach every consumer
  // instance. More than one producer per instance means the arrival
  // interleaving is scheduler-dependent in a distributed runtime — the
  // merge points the determinism analysis cares about.
  const Partitioning mode = ctx.op(op).input_partitioning;
  int producers = 0;
  for (const LogicalPlan::OpId up : ctx.inputs[op]) {
    producers += mode == Partitioning::kForward
                     ? 1
                     : std::max(1, ctx.op(up).parallelism);
  }
  return producers;
}

}  // namespace analysis
}  // namespace pdsp
