// The columnar data plane's core contract: kernel chunk size is purely an
// execution granularity. Running the same seeded simulation with
// batch_rows=1 (tuple-at-a-time through the row-view adapters) and
// batch_rows=256 (vectorized kernels over whole chunks) must produce
// bit-identical results for every application in the Table 2 suite —
// identical tuple counts, identical latency statistics, identical per-
// operator stats and identical latency-attribution telescoping.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "src/apps/apps.h"
#include "src/sim/simulation.h"

namespace pdsp {
namespace {

ExecutionOptions AppOptionsFor(int64_t batch_rows) {
  ExecutionOptions opt;
  opt.sim.duration_s = 2.0;
  opt.sim.warmup_s = 0.5;
  opt.sim.seed = 17;
  opt.sim.batch_rows = batch_rows;
  opt.sim.attribute_latency = true;
  return opt;
}

// Bit-level double equality: NaN percentiles (an app whose windows never
// fire inside the horizon, like FD's sparse Markov-chain scorer at this
// data density) must still compare equal across the two legs.
::testing::AssertionResult SameBits(double x, double y) {
  if (std::memcmp(&x, &y, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << x << " vs " << y;
}

void ExpectBitIdentical(const SimResult& a, const SimResult& b,
                        const char* app) {
  EXPECT_EQ(a.source_tuples, b.source_tuples) << app;
  EXPECT_EQ(a.sink_tuples, b.sink_tuples) << app;
  EXPECT_EQ(a.late_drops, b.late_drops) << app;
  EXPECT_EQ(a.backpressure_skipped, b.backpressure_skipped) << app;
  EXPECT_EQ(a.events_processed, b.events_processed) << app;
  EXPECT_TRUE(SameBits(a.virtual_time_end, b.virtual_time_end)) << app;
  EXPECT_TRUE(SameBits(a.median_latency_s, b.median_latency_s)) << app;
  EXPECT_TRUE(SameBits(a.mean_latency_s, b.mean_latency_s)) << app;
  EXPECT_TRUE(SameBits(a.p95_latency_s, b.p95_latency_s)) << app;
  EXPECT_TRUE(SameBits(a.p99_latency_s, b.p99_latency_s)) << app;
  EXPECT_TRUE(SameBits(a.throughput_tps, b.throughput_tps)) << app;
  ASSERT_EQ(a.op_stats.size(), b.op_stats.size()) << app;
  for (size_t i = 0; i < a.op_stats.size(); ++i) {
    const OperatorRunStats& sa = a.op_stats[i];
    const OperatorRunStats& sb = b.op_stats[i];
    EXPECT_EQ(sa.tuples_in, sb.tuples_in) << app << " op " << sa.name;
    EXPECT_EQ(sa.tuples_out, sb.tuples_out) << app << " op " << sa.name;
    EXPECT_EQ(sa.late_drops, sb.late_drops) << app << " op " << sa.name;
    EXPECT_DOUBLE_EQ(sa.busy_time_s, sb.busy_time_s)
        << app << " op " << sa.name;
    EXPECT_EQ(sa.max_queue_tuples, sb.max_queue_tuples)
        << app << " op " << sa.name;
    EXPECT_DOUBLE_EQ(sa.latency.queue_wait_sum_s, sb.latency.queue_wait_sum_s)
        << app << " op " << sa.name;
    EXPECT_DOUBLE_EQ(sa.latency.service_sum_s, sb.latency.service_sum_s)
        << app << " op " << sa.name;
    EXPECT_DOUBLE_EQ(sa.latency.window_sum_s, sb.latency.window_sum_s)
        << app << " op " << sa.name;
  }
  EXPECT_EQ(a.breakdown.samples, b.breakdown.samples) << app;
  EXPECT_DOUBLE_EQ(a.breakdown.total_s, b.breakdown.total_s) << app;
  EXPECT_DOUBLE_EQ(a.breakdown.ComponentSum(), b.breakdown.ComponentSum())
      << app;
  // The attribution invariant itself must keep telescoping in both modes.
  if (a.breakdown.samples > 0) {
    EXPECT_NEAR(a.breakdown.ComponentSum(), a.breakdown.total_s,
                1e-9 + 1e-9 * std::abs(a.breakdown.total_s))
        << app;
  }
}

TEST(BatchEquivalenceTest, AllFourteenAppsBitIdenticalAcrossBatchSizes) {
  AppOptions app_opt;
  app_opt.event_rate = 4000.0;
  app_opt.parallelism = 2;
  for (const AppInfo& info : AllApps()) {
    auto plan = MakeApp(info.id, app_opt);
    ASSERT_TRUE(plan.ok()) << info.abbrev << ": "
                           << plan.status().ToString();
    auto row = ExecutePlan(*plan, Cluster::M510(4), AppOptionsFor(1));
    auto batch = ExecutePlan(*plan, Cluster::M510(4), AppOptionsFor(256));
    ASSERT_TRUE(row.ok()) << info.abbrev << ": " << row.status().ToString();
    ASSERT_TRUE(batch.ok()) << info.abbrev << ": "
                            << batch.status().ToString();
    // FD legitimately sinks nothing at this data density (its Markov-chain
    // scorer needs >4 tuples per account before it can flag); every app
    // must still push real traffic through the columnar plane.
    EXPECT_GT(row->source_tuples, 0) << info.abbrev;
    if (info.id != AppId::kFraudDetection) {
      EXPECT_GT(row->sink_tuples, 0) << info.abbrev;
    }
    ExpectBitIdentical(*row, *batch, info.abbrev);
  }
}

TEST(BatchEquivalenceTest, DefaultBatchRowsMatchesTupleAtATime) {
  // The default (1024) must also be on the same bit-exact trajectory.
  AppOptions app_opt;
  app_opt.event_rate = 4000.0;
  app_opt.parallelism = 2;
  auto plan = MakeApp(AppId::kWordCount, app_opt);
  ASSERT_TRUE(plan.ok());
  auto one = ExecutePlan(*plan, Cluster::M510(4), AppOptionsFor(1));
  ExecutionOptions def = AppOptionsFor(1);
  def.sim.batch_rows = SimOptions{}.batch_rows;
  auto dflt = ExecutePlan(*plan, Cluster::M510(4), def);
  ASSERT_TRUE(one.ok() && dflt.ok());
  ExpectBitIdentical(*one, *dflt, "WC-default");
}

TEST(BatchEquivalenceTest, DataPlaneCountersPopulated) {
  AppOptions app_opt;
  app_opt.event_rate = 4000.0;
  app_opt.parallelism = 2;
  auto plan = MakeApp(AppId::kWordCount, app_opt);
  ASSERT_TRUE(plan.ok());
  auto r = ExecutePlan(*plan, Cluster::M510(4), AppOptionsFor(256));
  ASSERT_TRUE(r.ok());
  const auto batches =
      r->metrics->GetCounter("pdsp.data.batches")->value();
  const auto rows = r->metrics->GetCounter("pdsp.data.rows")->value();
  EXPECT_GT(batches, 0);
  EXPECT_GE(rows, batches);
  // The Table 2 apps declare their UDO outputs correctly, so no column may
  // ever promote on the hot path.
  EXPECT_EQ(r->metrics->GetCounter("pdsp.data.column_promotions")->value(),
            0);
}

TEST(BatchEquivalenceTest, BatchRowsValidated) {
  AppOptions app_opt;
  auto plan = MakeApp(AppId::kWordCount, app_opt);
  ASSERT_TRUE(plan.ok());
  ExecutionOptions opt = AppOptionsFor(0);
  auto r = ExecutePlan(*plan, Cluster::M510(4), opt);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

}  // namespace
}  // namespace pdsp
