#include "src/query/selectivity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

FieldGeneratorSpec UniformIntSpec(double lo, double hi) {
  FieldGeneratorSpec s;
  s.dist = FieldDistribution::kUniformInt;
  s.min = lo;
  s.max = hi;
  return s;
}

FieldGeneratorSpec UniformDoubleSpec(double lo, double hi) {
  FieldGeneratorSpec s;
  s.dist = FieldDistribution::kUniformDouble;
  s.min = lo;
  s.max = hi;
  return s;
}

TEST(SelectivityTest, UniformIntComparisons) {
  auto spec = UniformIntSpec(1, 100);
  EXPECT_NEAR(*EstimateFilterSelectivity(spec, FilterOp::kLe, Value(50)),
              0.50, 1e-9);
  EXPECT_NEAR(*EstimateFilterSelectivity(spec, FilterOp::kLt, Value(51)),
              0.50, 1e-9);
  EXPECT_NEAR(*EstimateFilterSelectivity(spec, FilterOp::kGt, Value(75)),
              0.25, 1e-9);
  EXPECT_NEAR(*EstimateFilterSelectivity(spec, FilterOp::kEq, Value(7)),
              0.01, 1e-9);
  EXPECT_NEAR(*EstimateFilterSelectivity(spec, FilterOp::kNe, Value(7)),
              0.99, 1e-9);
}

TEST(SelectivityTest, LiteralOutsideRangeClampsToZeroOrOne) {
  auto spec = UniformIntSpec(1, 100);
  EXPECT_DOUBLE_EQ(*EstimateFilterSelectivity(spec, FilterOp::kGt, Value(1000)),
                   0.0);
  EXPECT_DOUBLE_EQ(*EstimateFilterSelectivity(spec, FilterOp::kLe, Value(1000)),
                   1.0);
}

TEST(SelectivityTest, UniformDoubleComparisons) {
  auto spec = UniformDoubleSpec(0.0, 10.0);
  EXPECT_NEAR(*EstimateFilterSelectivity(spec, FilterOp::kLt, Value(2.5)),
              0.25, 1e-9);
  // Equality on a continuous field has zero mass.
  EXPECT_DOUBLE_EQ(*EstimateFilterSelectivity(spec, FilterOp::kEq, Value(5.0)),
                   0.0);
  EXPECT_DOUBLE_EQ(*EstimateFilterSelectivity(spec, FilterOp::kNe, Value(5.0)),
                   1.0);
}

TEST(SelectivityTest, NormalDoubleMedianAtMean) {
  FieldGeneratorSpec spec;
  spec.dist = FieldDistribution::kNormalDouble;
  spec.min = 0.0;
  spec.max = 10.0;  // mean 5, sd 10/6
  EXPECT_NEAR(*EstimateFilterSelectivity(spec, FilterOp::kLe, Value(5.0)),
              0.5, 1e-6);
  EXPECT_GT(*EstimateFilterSelectivity(spec, FilterOp::kLe, Value(7.0)), 0.7);
}

TEST(SelectivityTest, ZipfEqualityOnTopRankDominates) {
  FieldGeneratorSpec spec;
  spec.dist = FieldDistribution::kZipfKey;
  spec.cardinality = 1000;
  spec.zipf_s = 1.0;
  const double top = *EstimateFilterSelectivity(spec, FilterOp::kEq, Value(1));
  const double mid =
      *EstimateFilterSelectivity(spec, FilterOp::kEq, Value(500));
  EXPECT_GT(top, 0.05);
  EXPECT_GT(top, mid * 50);
}

TEST(SelectivityTest, StringLiteralAgainstNumericFieldIsError) {
  auto spec = UniformIntSpec(1, 100);
  EXPECT_TRUE(EstimateFilterSelectivity(spec, FilterOp::kGt, Value("x"))
                  .status()
                  .IsInvalidArgument());
}

TEST(SelectivityTest, WordStringEqualityUsesDictionaryShare) {
  FieldGeneratorSpec spec;
  spec.dist = FieldDistribution::kWordString;
  spec.cardinality = 200;
  EXPECT_NEAR(*EstimateFilterSelectivity(spec, FilterOp::kEq, Value("x")),
              1.0 / 200, 1e-9);
  EXPECT_NEAR(*EstimateFilterSelectivity(spec, FilterOp::kLt, Value("x")), 0.5,
              1e-9);
}

// The core property of Section 3.1: generated literals must give the
// requested selectivity, and empirical pass rates must match it.
class LiteralInversionTest
    : public ::testing::TestWithParam<std::tuple<FilterOp, double>> {};

TEST_P(LiteralInversionTest, EmpiricalSelectivityMatchesTarget) {
  const auto [op, target] = GetParam();
  Rng rng(1234);
  const std::vector<FieldGeneratorSpec> field_specs = {
      UniformIntSpec(0, 10000),
      UniformDoubleSpec(-50.0, 50.0),
  };
  for (const auto& spec : field_specs) {
    auto literal = LiteralForSelectivity(spec, op, target, &rng);
    ASSERT_TRUE(literal.ok()) << literal.status().ToString();
    // Empirical check: generate values and measure the pass rate.
    Schema schema({{"a", spec.OutputType()}});
    auto gen = TupleGenerator::Create(schema, {spec}, 77);
    ASSERT_TRUE(gen.ok());
    int64_t pass = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      const Value v = gen->Next(0).values[0];
      bool hit = false;
      switch (op) {
        case FilterOp::kLt:
          hit = v < *literal;
          break;
        case FilterOp::kLe:
          hit = v <= *literal;
          break;
        case FilterOp::kGt:
          hit = v > *literal;
          break;
        case FilterOp::kGe:
          hit = v >= *literal;
          break;
        default:
          hit = false;
      }
      pass += hit;
    }
    EXPECT_NEAR(static_cast<double>(pass) / n, target, 0.03)
        << "op=" << FilterOpToString(op) << " target=" << target;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndTargets, LiteralInversionTest,
    ::testing::Combine(::testing::Values(FilterOp::kLt, FilterOp::kLe,
                                         FilterOp::kGt, FilterOp::kGe),
                       ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9)));

TEST(LiteralForSelectivityTest, EqualityOnZipfKeyApproximatesTarget) {
  FieldGeneratorSpec spec;
  spec.dist = FieldDistribution::kZipfKey;
  spec.cardinality = 10000;
  spec.zipf_s = 1.0;
  Rng rng(5);
  auto lit = LiteralForSelectivity(spec, FilterOp::kEq, 0.05, &rng);
  ASSERT_TRUE(lit.ok());
  const double est =
      *EstimateFilterSelectivity(spec, FilterOp::kEq, *lit);
  EXPECT_GT(est, 0.005);
  EXPECT_LT(est, 0.25);
}

TEST(LiteralForSelectivityTest, EqualityOnContinuousFieldIsError) {
  Rng rng(5);
  auto r = LiteralForSelectivity(UniformDoubleSpec(0, 1), FilterOp::kEq, 0.5,
                                 &rng);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(LiteralForSelectivityTest, SequenceFieldIsError) {
  FieldGeneratorSpec spec;
  spec.dist = FieldDistribution::kSequence;
  Rng rng(5);
  EXPECT_FALSE(LiteralForSelectivity(spec, FilterOp::kGt, 0.5, &rng).ok());
}

TEST(GeneralizedHarmonicTest, MatchesDirectSum) {
  double direct = 0.0;
  for (int k = 1; k <= 1000; ++k) direct += std::pow(k, -1.2);
  EXPECT_NEAR(GeneralizedHarmonic(1000, 1.2), direct, 1e-9);
}

TEST(GeneralizedHarmonicTest, LargeNUsesIntegralTail) {
  // H_{10^7, 1.0} ~ ln(10^7) + gamma ~ 16.695.
  EXPECT_NEAR(GeneralizedHarmonic(10000000, 1.0), 16.695, 0.01);
}

TEST(ZipfCdfTest, Monotone) {
  double prev = 0.0;
  for (int k = 1; k <= 100; k += 7) {
    const double c = ZipfCdf(k, 100, 0.9);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(ZipfCdf(100, 100, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(ZipfCdf(0, 100, 0.9), 0.0);
}

TEST(ResolveFieldSpecTest, WalksThroughFiltersAndMaps) {
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  auto agg = plan->FindOperator("agg");
  ASSERT_TRUE(agg.ok());
  // Field 0 (key) upstream of agg resolves to the zipf key spec.
  auto spec = ResolveFieldSpec(*plan, plan->Inputs(*agg)[0], 0);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->dist, FieldDistribution::kZipfKey);
}

TEST(ResolveFieldSpecTest, StopsAtAggregates) {
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  // The sink's input is the aggregate: provenance must fail.
  auto spec = ResolveFieldSpec(*plan, plan->SinkId(), 0);
  EXPECT_TRUE(spec.status().IsFailedPrecondition());
}

TEST(AnnotateFilterSelectivitiesTest, FillsHints) {
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  auto f = plan->FindOperator("filter");
  ASSERT_TRUE(f.ok());
  EXPECT_LT(plan->op(*f).selectivity_hint, 0.0);
  ASSERT_TRUE(AnnotateFilterSelectivities(&*plan).ok());
  // filter: val > 50 on uniform[0,100) => sel 0.5.
  EXPECT_NEAR(plan->op(*f).selectivity_hint, 0.5, 1e-6);
  EXPECT_TRUE(plan->validated());
}

}  // namespace
}  // namespace pdsp
