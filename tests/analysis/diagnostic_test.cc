#include "src/analysis/diagnostic.h"

#include <gtest/gtest.h>

namespace pdsp {
namespace analysis {
namespace {

Diagnostic MakeDiag(Severity severity, const std::string& code, int op,
                    const std::string& message, const std::string& hint = "") {
  Diagnostic d;
  d.severity = severity;
  d.code = code;
  d.pass = "test-pass";
  d.op = op;
  d.op_name = op >= 0 ? "op" + std::to_string(op) : "";
  d.message = message;
  d.hint = hint;
  return d;
}

TEST(DiagnosticTest, SeverityNames) {
  EXPECT_STREQ(SeverityToString(Severity::kInfo), "info");
  EXPECT_STREQ(SeverityToString(Severity::kWarning), "warn");
  EXPECT_STREQ(SeverityToString(Severity::kError), "error");
}

TEST(DiagnosticTest, ToStringCarriesCodeSeverityPassOpAndHint) {
  Diagnostic d = MakeDiag(Severity::kError, "PDSP-E301", 3, "keys disagree",
                          "align the key types");
  const std::string s = d.ToString();
  EXPECT_NE(s.find("PDSP-E301"), std::string::npos) << s;
  EXPECT_NE(s.find("[error]"), std::string::npos) << s;
  EXPECT_NE(s.find("test-pass"), std::string::npos) << s;
  EXPECT_NE(s.find("op3"), std::string::npos) << s;
  EXPECT_NE(s.find("keys disagree"), std::string::npos) << s;
  EXPECT_NE(s.find("fix: align the key types"), std::string::npos) << s;
}

TEST(DiagnosticTest, PlanLevelDiagnosticOmitsOperator) {
  Diagnostic d = MakeDiag(Severity::kWarning, "PDSP-W902", -1, "oversubscribed");
  const std::string s = d.ToString();
  EXPECT_EQ(s.find('@'), std::string::npos) << s;
  EXPECT_EQ(s.find("fix:"), std::string::npos) << s;
}

TEST(DiagnosticTest, ToJsonFields) {
  Diagnostic d = MakeDiag(Severity::kInfo, "PDSP-I903", 2, "hello", "do x");
  const std::string json = d.ToJson().Dump();
  EXPECT_NE(json.find("\"PDSP-I903\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"info\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"do x\""), std::string::npos) << json;
}

TEST(AnalysisReportTest, EmptyReport) {
  AnalysisReport report;
  EXPECT_TRUE(report.empty());
  EXPECT_FALSE(report.HasErrors());
  EXPECT_EQ(report.NumErrors(), 0u);
  EXPECT_EQ(report.ToString(), "no diagnostics\n");
  EXPECT_TRUE(report.ToStatus().ok());
}

TEST(AnalysisReportTest, FinalizeSortsBySeverityThenOpThenCode) {
  AnalysisReport report;
  report.Add(MakeDiag(Severity::kInfo, "PDSP-I903", -1, "info"));
  report.Add(MakeDiag(Severity::kError, "PDSP-E401", 5, "late error"));
  report.Add(MakeDiag(Severity::kWarning, "PDSP-W011", 1, "warn"));
  report.Add(MakeDiag(Severity::kError, "PDSP-E101", 2, "early error"));
  report.Finalize();
  const auto& d = report.diagnostics();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[0].code, "PDSP-E101");  // errors first, op 2 before op 5
  EXPECT_EQ(d[1].code, "PDSP-E401");
  EXPECT_EQ(d[2].code, "PDSP-W011");
  EXPECT_EQ(d[3].code, "PDSP-I903");
}

TEST(AnalysisReportTest, CountsAndHasCode) {
  AnalysisReport report;
  report.Add(MakeDiag(Severity::kError, "PDSP-E101", 0, "e"));
  report.Add(MakeDiag(Severity::kWarning, "PDSP-W205", 1, "w"));
  report.Add(MakeDiag(Severity::kWarning, "PDSP-W702", 2, "w"));
  report.Add(MakeDiag(Severity::kInfo, "PDSP-I903", -1, "i"));
  report.Finalize();
  EXPECT_EQ(report.CountAtLeast(Severity::kError), 1u);
  EXPECT_EQ(report.CountAtLeast(Severity::kWarning), 3u);
  EXPECT_EQ(report.CountAtLeast(Severity::kInfo), 4u);
  EXPECT_TRUE(report.HasCode("PDSP-W702"));
  EXPECT_FALSE(report.HasCode("PDSP-E999"));
}

TEST(AnalysisReportTest, ToStringSummaryLine) {
  AnalysisReport report;
  report.Add(MakeDiag(Severity::kError, "PDSP-E101", 0, "e"));
  report.Add(MakeDiag(Severity::kWarning, "PDSP-W205", 1, "w"));
  report.Finalize();
  const std::string s = report.ToString();
  EXPECT_NE(s.find("1 error"), std::string::npos) << s;
  EXPECT_NE(s.find("1 warning"), std::string::npos) << s;
}

TEST(AnalysisReportTest, ToStatusListsEveryErrorCode) {
  AnalysisReport report;
  report.Add(MakeDiag(Severity::kError, "PDSP-E101", 0, "cycle"));
  report.Add(MakeDiag(Severity::kError, "PDSP-E502", 3, "nan literal"));
  report.Add(MakeDiag(Severity::kWarning, "PDSP-W205", 1, "w"));
  report.Finalize();
  const Status st = report.ToStatus();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  EXPECT_NE(st.message().find("PDSP-E101"), std::string::npos);
  EXPECT_NE(st.message().find("PDSP-E502"), std::string::npos);
  EXPECT_EQ(st.message().find("PDSP-W205"), std::string::npos);
}

TEST(AnalysisReportTest, ToJsonCounts) {
  AnalysisReport report;
  report.Add(MakeDiag(Severity::kError, "PDSP-E101", 0, "e"));
  report.Add(MakeDiag(Severity::kInfo, "PDSP-I903", -1, "i"));
  report.Finalize();
  const std::string json = report.ToJson().Dump();
  EXPECT_NE(json.find("\"errors\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"diagnostics\""), std::string::npos) << json;
}

}  // namespace
}  // namespace analysis
}  // namespace pdsp
