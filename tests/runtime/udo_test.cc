#include "src/runtime/udo.h"

#include <gtest/gtest.h>

namespace pdsp {
namespace {

StreamElement Elem(std::vector<Value> values) {
  StreamElement e;
  e.tuple.values = std::move(values);
  return e;
}

OperatorDescriptor UdoDesc(const std::string& kind, double selectivity = 1.0) {
  OperatorDescriptor op;
  op.type = OperatorType::kUdo;
  op.name = "u";
  op.udo_kind = kind;
  op.udo_selectivity = selectivity;
  return op;
}

TEST(UdoRegistryTest, GenericKindsPreRegistered) {
  UdoRegistry& reg = UdoRegistry::Global();
  for (const char* kind :
       {"noop", "heavy", "sample", "replicate", "key_count"}) {
    EXPECT_TRUE(reg.Contains(kind)) << kind;
  }
  EXPECT_FALSE(reg.Contains("definitely_not_registered"));
  EXPECT_GE(reg.Kinds().size(), 5u);
}

TEST(UdoRegistryTest, UnknownKindIsNotFound) {
  EXPECT_TRUE(UdoRegistry::Global()
                  .Create(UdoDesc("definitely_not_registered"))
                  .status()
                  .IsNotFound());
}

TEST(UdoRegistryTest, ReRegisteringReplaces) {
  UdoRegistry& reg = UdoRegistry::Global();
  int calls = 0;
  reg.Register("test_replaceable", [&calls](const OperatorDescriptor&) {
    ++calls;
    return std::move(UdoRegistry::Global().Create(UdoDesc("noop")).value());
  });
  ASSERT_TRUE(reg.Create(UdoDesc("test_replaceable")).ok());
  EXPECT_EQ(calls, 1);
  reg.Register("test_replaceable", [](const OperatorDescriptor&) {
    return std::move(UdoRegistry::Global().Create(UdoDesc("noop")).value());
  });
  ASSERT_TRUE(reg.Create(UdoDesc("test_replaceable")).ok());
  EXPECT_EQ(calls, 1);  // replaced factory, not the old one
}

TEST(GenericUdosTest, NoopPassesThrough) {
  auto udo = UdoRegistry::Global().Create(UdoDesc("noop"));
  ASSERT_TRUE(udo.ok());
  Rng rng(1);
  UdoContext ctx;
  ctx.rng = &rng;
  std::vector<StreamElement> out;
  (*udo)->Process(Elem({Value(5)}), &ctx, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tuple.values[0].AsInt(), 5);
}

TEST(GenericUdosTest, ReplicateEmitsMeanCopies) {
  auto udo = UdoRegistry::Global().Create(UdoDesc("replicate", 3.5));
  ASSERT_TRUE(udo.ok());
  Rng rng(2);
  UdoContext ctx;
  ctx.rng = &rng;
  std::vector<StreamElement> out;
  const int n = 4000;
  for (int i = 0; i < n; ++i) (*udo)->Process(Elem({Value(1)}), &ctx, &out);
  EXPECT_NEAR(static_cast<double>(out.size()) / n, 3.5, 0.1);
}

TEST(GenericUdosTest, KeyCountAppendsRunningCount) {
  auto udo = UdoRegistry::Global().Create(UdoDesc("key_count"));
  ASSERT_TRUE(udo.ok());
  Rng rng(3);
  UdoContext ctx;
  ctx.rng = &rng;
  std::vector<StreamElement> out;
  (*udo)->Process(Elem({Value("a")}), &ctx, &out);
  (*udo)->Process(Elem({Value("b")}), &ctx, &out);
  (*udo)->Process(Elem({Value("a")}), &ctx, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].tuple.values[1].AsInt(), 1);  // first a
  EXPECT_EQ(out[1].tuple.values[1].AsInt(), 1);  // first b
  EXPECT_EQ(out[2].tuple.values[1].AsInt(), 2);  // second a
}

TEST(GenericUdosTest, KeyCountIgnoresEmptyTuples) {
  auto udo = UdoRegistry::Global().Create(UdoDesc("key_count"));
  ASSERT_TRUE(udo.ok());
  Rng rng(4);
  UdoContext ctx;
  ctx.rng = &rng;
  std::vector<StreamElement> out;
  (*udo)->Process(Elem({}), &ctx, &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace pdsp
