#include "src/data/generator.h"

#include <gtest/gtest.h>

#include <set>

namespace pdsp {
namespace {

Schema TwoFieldSchema() {
  return Schema({{"a", DataType::kInt}, {"b", DataType::kDouble}});
}

TEST(TupleGeneratorTest, RejectsArityMismatch) {
  auto gen = TupleGenerator::Create(TwoFieldSchema(),
                                    {FieldGeneratorSpec{}}, 1);
  EXPECT_TRUE(gen.status().IsInvalidArgument());
}

TEST(TupleGeneratorTest, RejectsTypeMismatch) {
  FieldGeneratorSpec int_spec;  // kUniformInt -> int
  FieldGeneratorSpec also_int = int_spec;
  auto gen = TupleGenerator::Create(TwoFieldSchema(), {int_spec, also_int}, 1);
  EXPECT_TRUE(gen.status().IsInvalidArgument());
}

TEST(TupleGeneratorTest, RejectsBadRanges) {
  FieldGeneratorSpec bad;
  bad.min = 10;
  bad.max = 1;
  auto gen = TupleGenerator::Create(Schema({{"a", DataType::kInt}}), {bad}, 1);
  EXPECT_TRUE(gen.status().IsInvalidArgument());

  FieldGeneratorSpec zero_card;
  zero_card.dist = FieldDistribution::kZipfKey;
  zero_card.cardinality = 0;
  auto gen2 =
      TupleGenerator::Create(Schema({{"a", DataType::kInt}}), {zero_card}, 1);
  EXPECT_TRUE(gen2.status().IsInvalidArgument());
}

TEST(TupleGeneratorTest, GeneratesConformingTuples) {
  FieldGeneratorSpec int_spec;
  int_spec.min = 0;
  int_spec.max = 9;
  FieldGeneratorSpec dbl_spec;
  dbl_spec.dist = FieldDistribution::kUniformDouble;
  dbl_spec.min = -1.0;
  dbl_spec.max = 1.0;
  auto gen = TupleGenerator::Create(TwoFieldSchema(), {int_spec, dbl_spec}, 7);
  ASSERT_TRUE(gen.ok());
  for (int i = 0; i < 1000; ++i) {
    Tuple t = gen->Next(static_cast<double>(i));
    ASSERT_EQ(t.values.size(), 2u);
    EXPECT_TRUE(t.values[0].is_int());
    EXPECT_GE(t.values[0].AsInt(), 0);
    EXPECT_LE(t.values[0].AsInt(), 9);
    EXPECT_TRUE(t.values[1].is_double());
    EXPECT_GE(t.values[1].AsDouble(), -1.0);
    EXPECT_LT(t.values[1].AsDouble(), 1.0);
    EXPECT_EQ(t.event_time, static_cast<double>(i));
  }
}

TEST(TupleGeneratorTest, NormalDoubleStaysClamped) {
  FieldGeneratorSpec spec;
  spec.dist = FieldDistribution::kNormalDouble;
  spec.min = 0.0;
  spec.max = 10.0;
  auto gen =
      TupleGenerator::Create(Schema({{"a", DataType::kDouble}}), {spec}, 3);
  ASSERT_TRUE(gen.ok());
  for (int i = 0; i < 5000; ++i) {
    double v = gen->Next(0).values[0].AsDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST(TupleGeneratorTest, SequenceFieldIncrements) {
  FieldGeneratorSpec spec;
  spec.dist = FieldDistribution::kSequence;
  auto gen =
      TupleGenerator::Create(Schema({{"id", DataType::kInt}}), {spec}, 3);
  ASSERT_TRUE(gen.ok());
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(gen->Next(0).values[0].AsInt(), i);
  }
}

TEST(TupleGeneratorTest, ZipfKeySkew) {
  FieldGeneratorSpec spec;
  spec.dist = FieldDistribution::kZipfKey;
  spec.cardinality = 1000;
  spec.zipf_s = 1.1;
  auto gen =
      TupleGenerator::Create(Schema({{"k", DataType::kInt}}), {spec}, 3);
  ASSERT_TRUE(gen.ok());
  int64_t rank1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) rank1 += (gen->Next(0).values[0].AsInt() == 1);
  EXPECT_GT(rank1, n / 100);  // far above the uniform 1/1000 share
}

TEST(TupleGeneratorTest, WordStringsComeFromDictionary) {
  FieldGeneratorSpec spec;
  spec.dist = FieldDistribution::kWordString;
  spec.cardinality = 50;
  auto gen =
      TupleGenerator::Create(Schema({{"w", DataType::kString}}), {spec}, 3);
  ASSERT_TRUE(gen.ok());
  std::set<std::string> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(gen->Next(0).values[0].AsString());
  EXPECT_LE(seen.size(), 50u);
  EXPECT_GT(seen.size(), 10u);
}

TEST(TupleGeneratorTest, DeterministicAcrossRuns) {
  FieldGeneratorSpec spec;
  spec.min = 0;
  spec.max = 1000000;
  auto a = TupleGenerator::Create(Schema({{"a", DataType::kInt}}), {spec}, 99);
  auto b = TupleGenerator::Create(Schema({{"a", DataType::kInt}}), {spec}, 99);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a->Next(0).values[0].AsInt(), b->Next(0).values[0].AsInt());
  }
}

TEST(DictionaryWordTest, DeterministicAndDistinct) {
  EXPECT_EQ(DictionaryWord(0), DictionaryWord(0));
  std::set<std::string> words;
  for (int64_t i = 0; i < 500; ++i) words.insert(DictionaryWord(i));
  EXPECT_EQ(words.size(), 500u);
}

TEST(DictionaryWordTest, NegativeIndexIsSafe) {
  EXPECT_FALSE(DictionaryWord(-5).empty());
}

TEST(RandomStreamSpecTest, RespectsWidthBounds) {
  SchemaRandomizerOptions opt;
  opt.min_tuple_width = 2;
  opt.max_tuple_width = 6;
  Rng rng(42);
  for (int i = 0; i < 50; ++i) {
    StreamSpec spec = RandomStreamSpec(opt, &rng);
    EXPECT_GE(spec.schema.NumFields(), 2u);
    EXPECT_LE(spec.schema.NumFields(), 6u);
    EXPECT_EQ(spec.schema.NumFields(), spec.specs.size());
  }
}

TEST(RandomStreamSpecTest, SpecsMatchSchemaTypes) {
  SchemaRandomizerOptions opt;
  Rng rng(43);
  for (int i = 0; i < 50; ++i) {
    StreamSpec spec = RandomStreamSpec(opt, &rng);
    for (size_t f = 0; f < spec.specs.size(); ++f) {
      EXPECT_EQ(spec.specs[f].OutputType(), spec.schema.field(f).type);
    }
    // A generated spec must be usable by TupleGenerator.
    auto gen = TupleGenerator::Create(spec.schema, spec.specs, 1);
    EXPECT_TRUE(gen.ok()) << gen.status().ToString();
  }
}

TEST(RandomStreamSpecTest, NoStringsWhenDisallowed) {
  SchemaRandomizerOptions opt;
  opt.allow_strings = false;
  Rng rng(44);
  for (int i = 0; i < 30; ++i) {
    StreamSpec spec = RandomStreamSpec(opt, &rng);
    for (size_t f = 0; f < spec.schema.NumFields(); ++f) {
      EXPECT_NE(spec.schema.field(f).type, DataType::kString);
    }
  }
}

TEST(FieldGeneratorSpecTest, OutputTypes) {
  FieldGeneratorSpec s;
  s.dist = FieldDistribution::kUniformInt;
  EXPECT_EQ(s.OutputType(), DataType::kInt);
  s.dist = FieldDistribution::kNormalDouble;
  EXPECT_EQ(s.OutputType(), DataType::kDouble);
  s.dist = FieldDistribution::kWordString;
  EXPECT_EQ(s.OutputType(), DataType::kString);
  s.dist = FieldDistribution::kSequence;
  EXPECT_EQ(s.OutputType(), DataType::kInt);
}

}  // namespace
}  // namespace pdsp
