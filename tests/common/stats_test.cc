#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pdsp {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10 + i * 0.1;
    all.Add(x);
    (i < 37 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(LatencyRecorderTest, EmptyPercentileIsNaN) {
  LatencyRecorder r;
  EXPECT_TRUE(std::isnan(r.Percentile(50)));
  EXPECT_EQ(r.Count(), 0);
}

TEST(LatencyRecorderTest, MedianOfOddCount) {
  LatencyRecorder r;
  for (double x : {5.0, 1.0, 3.0}) r.Record(x);
  EXPECT_DOUBLE_EQ(r.Median(), 3.0);
}

TEST(LatencyRecorderTest, PercentileInterpolates) {
  LatencyRecorder r;
  for (double x : {10.0, 20.0}) r.Record(x);
  EXPECT_DOUBLE_EQ(r.Percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(r.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(r.Percentile(100), 20.0);
}

TEST(LatencyRecorderTest, MeanMinMaxTrackAllSamplesEvenWithReservoir) {
  LatencyRecorder r(/*reservoir_capacity=*/10);
  for (int i = 1; i <= 1000; ++i) r.Record(static_cast<double>(i));
  EXPECT_EQ(r.Count(), 1000);
  EXPECT_DOUBLE_EQ(r.Mean(), 500.5);
  EXPECT_EQ(r.Min(), 1.0);
  EXPECT_EQ(r.Max(), 1000.0);
}

TEST(LatencyRecorderTest, ReservoirMedianApproximatesTrueMedian) {
  LatencyRecorder r(/*reservoir_capacity=*/500);
  for (int i = 1; i <= 100000; ++i) r.Record(static_cast<double>(i));
  // With 500 uniform samples the median should be within ~15% of 50000.
  EXPECT_NEAR(r.Median(), 50000.0, 15000.0);
}

TEST(LatencyRecorderTest, SummaryMentionsCount) {
  LatencyRecorder r;
  r.Record(1.0);
  EXPECT_NE(r.Summary().find("count=1"), std::string::npos);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.NumBuckets(), 5u);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketLow(4), 8.0);
}

TEST(HistogramTest, AddClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-100.0);
  h.Add(100.0);
  h.Add(5.0);
  EXPECT_EQ(h.BucketCount(0), 1);
  EXPECT_EQ(h.BucketCount(4), 1);
  EXPECT_EQ(h.BucketCount(2), 1);
  EXPECT_EQ(h.TotalCount(), 3);
}

TEST(HistogramTest, ToStringHasOneLinePerBucket) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);
  std::string s = h.ToString();
  int lines = 0;
  for (char c : s) lines += (c == '\n');
  EXPECT_EQ(lines, 4);
}

TEST(RunningStatsTest, MergeEmptyIsNoOp) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.Add(x);
  const RunningStats empty;
  s.Merge(empty);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(RunningStatsTest, MergeIntoEmptyCopies) {
  RunningStats a, b;
  b.Add(5.0);
  b.Add(7.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 5.0);
  EXPECT_EQ(a.max(), 7.0);
}

TEST(RunningStatsTest, MergeTwoEmptiesStaysNaNConsistent) {
  RunningStats a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_TRUE(std::isnan(a.min()));
  EXPECT_TRUE(std::isnan(a.max()));
  EXPECT_EQ(a.mean(), 0.0);
}

TEST(LatencyRecorderTest, PercentileClampsOutOfRange) {
  LatencyRecorder rec;
  for (double x : {1.0, 2.0, 3.0, 4.0}) rec.Record(x);
  EXPECT_DOUBLE_EQ(rec.Percentile(-10.0), 1.0);
  EXPECT_DOUBLE_EQ(rec.Percentile(1000.0), 4.0);
  EXPECT_TRUE(std::isnan(rec.Percentile(
      std::numeric_limits<double>::quiet_NaN())));
}

TEST(LatencyRecorderTest, EmptyStatsStayNaNConsistent) {
  LatencyRecorder rec;
  EXPECT_TRUE(std::isnan(rec.Percentile(50.0)));
  EXPECT_TRUE(std::isnan(rec.Min()));
  EXPECT_TRUE(std::isnan(rec.Max()));
}

TEST(BatchStatsTest, PercentileClampsAndRejectsNaN) {
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0}, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0}, 250.0), 3.0);
  EXPECT_TRUE(std::isnan(
      Percentile({1.0, 2.0}, std::numeric_limits<double>::quiet_NaN())));
}

TEST(ExpHistogramTest, BucketsGrowExponentially) {
  ExpHistogram h;  // 1 µs .. 100 s, base 1.5
  EXPECT_GT(h.NumBuckets(), 40u);
  for (size_t i = 2; i + 1 < h.NumBuckets(); ++i) {
    EXPECT_NEAR(h.BucketHigh(i) / h.BucketLow(i), 1.5, 1e-9);
    EXPECT_DOUBLE_EQ(h.BucketLow(i), h.BucketHigh(i - 1));
  }
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 0.0);
  EXPECT_GE(h.BucketHigh(h.NumBuckets() - 1), 100.0);
}

TEST(ExpHistogramTest, AddRoutesToCoveringBucket) {
  ExpHistogram h(1e-6, 100.0, 1.5);
  for (double x : {5e-7, 1e-6, 3.3e-3, 1.0, 50.0, 1e9}) h.Add(x);
  EXPECT_EQ(h.TotalCount(), 6);
  EXPECT_EQ(h.BucketCount(0), 1);  // underflow
  EXPECT_EQ(h.BucketCount(h.NumBuckets() - 1), 1);  // overflow clamp
  int64_t sum = 0;
  for (size_t i = 0; i < h.NumBuckets(); ++i) sum += h.BucketCount(i);
  EXPECT_EQ(sum, h.TotalCount());
  const size_t ms3 = [&] {
    for (size_t i = 1; i < h.NumBuckets(); ++i) {
      if (h.BucketLow(i) <= 3.3e-3 && 3.3e-3 < h.BucketHigh(i)) return i;
    }
    return size_t{0};
  }();
  EXPECT_GE(h.BucketCount(ms3), 1);
}

TEST(ExpHistogramTest, PercentileEstimateIsWithinBucketError) {
  ExpHistogram h;
  std::vector<double> xs;
  for (int i = 1; i <= 1000; ++i) {
    const double x = 1e-4 * i;  // 0.1 ms .. 100 ms uniform
    xs.push_back(x);
    h.Add(x);
  }
  const double exact = Percentile(xs, 50.0);
  const double est = h.Percentile(50.0);
  // Bucket resolution is a factor of 1.5; the estimate must be within it.
  EXPECT_GT(est, exact / 1.5);
  EXPECT_LT(est, exact * 1.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), h.stats().min());
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), h.stats().max());
  EXPECT_DOUBLE_EQ(h.Percentile(200.0), h.stats().max());  // clamped
}

TEST(ExpHistogramTest, EmptyIsNaN) {
  ExpHistogram h;
  EXPECT_TRUE(std::isnan(h.Percentile(50.0)));
  EXPECT_EQ(h.TotalCount(), 0);
}

TEST(ExpHistogramTest, MergeAddsCounts) {
  ExpHistogram a, b;
  a.Add(0.001);
  b.Add(0.002);
  b.Add(1.0);
  a.Merge(b);
  EXPECT_EQ(a.TotalCount(), 3);
  EXPECT_EQ(a.stats().count(), 3);
  ExpHistogram empty;
  a.Merge(empty);  // no-op
  EXPECT_EQ(a.TotalCount(), 3);
  ExpHistogram other_geometry(1e-3, 10.0, 2.0);
  other_geometry.Add(0.5);
  a.Merge(other_geometry);  // incompatible: ignored
  EXPECT_EQ(a.TotalCount(), 3);
}

TEST(BatchStatsTest, MeanOfVector) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(BatchStatsTest, PercentileOfVector) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 50), 2.0);
  EXPECT_TRUE(std::isnan(Percentile({}, 50)));
}

TEST(BatchStatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(GeometricMean({1.0, 4.0}), 2.0);
  EXPECT_TRUE(std::isnan(GeometricMean({1.0, -1.0})));
  EXPECT_TRUE(std::isnan(GeometricMean({})));
}

}  // namespace
}  // namespace pdsp
