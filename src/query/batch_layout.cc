#include "src/query/batch_layout.h"

namespace pdsp {

data::BatchLayout LayoutForSchema(const Schema& schema) {
  return data::BatchLayout(schema);
}

Result<std::vector<data::BatchLayout>> DeriveBatchLayouts(
    const LogicalPlan& plan) {
  if (!plan.validated()) {
    return Status::FailedPrecondition(
        "DeriveBatchLayouts requires a validated plan");
  }
  std::vector<data::BatchLayout> layouts;
  layouts.reserve(plan.NumOperators());
  for (size_t id = 0; id < plan.NumOperators(); ++id) {
    layouts.push_back(
        LayoutForSchema(plan.OutputSchema(static_cast<LogicalPlan::OpId>(id))));
  }
  return layouts;
}

}  // namespace pdsp
