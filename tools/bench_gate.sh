#!/usr/bin/env bash
# Benchmark regression gate: re-measures a fixed subset of checked-in
# baselines (bench/baselines/*.json) with each baseline's recorded protocol,
# appends every measurement to the run ledger, and exits non-zero when any
# virtual-time metric regresses beyond the noise-aware threshold
# (pdsp::obs::CompareRecords). Also runs the micro_sim host-profiler,
# sampling-CPU-profiler and allocation-sampler pairs and reports the
# self-profiling overhead, and gates per-operator bytes-per-tuple against
# the checked-in allocation budgets (bench/baselines/mem_budget.json).
#
# Because the simulator is deterministic in virtual time for a fixed seed,
# an unchanged tree reproduces the baselines bit-for-bit on any machine —
# so two consecutive runs of this gate must both pass.
#
# Usage: tools/bench_gate.sh [build-dir]
#   build-dir defaults to ./build and must already contain the binaries.
#
# Environment:
#   PDSP_GATE_APPS        space-separated baseline labels to check
#                         (default: "WC SG linear" — must exist under
#                         bench/baselines/)
#   PDSP_GATE_THRESHOLD   relative regression threshold (default 0.25 —
#                         generous: CI catches breakage, not 1% noise)
#   PDSP_GATE_SIGMAS      noise gate width in combined stddevs (default 3.0)
#   PDSP_GATE_LEDGER      ledger path the gate appends to
#                         (default results/ledger.jsonl)
#   PDSP_GATE_SKIP_MICRO  set to 1 to skip the microbenchmark pass
#   PDSP_GATE_SKIP_TPUT   set to 1 to skip the kernel throughput gate
#   PDSP_GATE_SKIP_SWEEP  set to 1 to skip the parallel-sweep pair
#   PDSP_GATE_SKIP_MEM    set to 1 to skip the allocation budget gate
#   PDSP_GATE_SWEEP_JOBS  worker count for the parallel leg (default 4)

set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
APPS="${PDSP_GATE_APPS:-WC SG linear}"
THRESHOLD="${PDSP_GATE_THRESHOLD:-0.25}"
SIGMAS="${PDSP_GATE_SIGMAS:-3.0}"
LEDGER="${PDSP_GATE_LEDGER:-results/ledger.jsonl}"
BASELINE_DIR="bench/baselines"

step() { echo; echo "=== bench_gate: $* ==="; }

PDSPBENCH="$BUILD_DIR/tools/pdspbench"
if [ ! -x "$PDSPBENCH" ]; then
  echo "bench_gate: $PDSPBENCH not built (cmake --build $BUILD_DIR first)" >&2
  exit 2
fi

if [ "${PDSP_GATE_SKIP_MICRO:-0}" != "1" ] && [ -x "$BUILD_DIR/bench/micro_sim" ]; then
  step "micro_sim profiler overhead pairs (host + sampling CPU + alloc)"
  MICRO_JSON="$BUILD_DIR/bench_gate_micro.json"
  "$BUILD_DIR/bench/micro_sim" \
      --benchmark_filter='BM_SimLinearPlanHostProf|BM_SimLinearPlanProf|BM_SimLinearPlanMemProf' \
      --benchmark_format=json > "$MICRO_JSON"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$MICRO_JSON" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
times = {b["name"]: b["real_time"] for b in d["benchmarks"]}
# Generous CI bound per pair; the design target is <= 2% but
# single-iteration microbenchmark noise on shared CI hosts can exceed that.
for label, on_name, off_name in [
    ("host-profiler", "BM_SimLinearPlanHostProf",
     "BM_SimLinearPlanHostProfOff"),
    ("cpu-sampling-profiler", "BM_SimLinearPlanProf",
     "BM_SimLinearPlanProfOff"),
    ("allocation-sampling-profiler", "BM_SimLinearPlanMemProf",
     "BM_SimLinearPlanMemProfOff"),
]:
    on, off = times[on_name], times[off_name]
    overhead = (on - off) / off
    print(f"{label} overhead: {overhead * 100:+.2f}% "
          f"(on {on:.0f} ns, off {off:.0f} ns)")
    if overhead > 0.10:
        sys.exit(f"{label} overhead {overhead*100:.1f}% exceeds 10% bound")
EOF
  fi
fi

if [ "${PDSP_GATE_SKIP_TPUT:-0}" != "1" ] && \
    [ -x "$BUILD_DIR/bench/micro_operators" ] && \
    [ -f "$BASELINE_DIR/throughput_budget.json" ] && \
    command -v python3 >/dev/null 2>&1; then
  step "kernel throughput gate (elements/s vs $BASELINE_DIR/throughput_budget.json)"
  # The columnar data plane's performance contract: every vectorized kernel
  # is benchmarked next to its scalar per-element twin at the same batch
  # size, and the vectorized/scalar items-per-second ratio must clear each
  # pair's checked-in min_speedup (3x for filter and aggregate at 1024).
  # Absolute floors are deliberately loose — machine-independent ratios are
  # the real gate; the floors only catch a catastrophic (10x-scale)
  # throughput collapse. Repeat counts and the aggregate-median reporting
  # keep single-run scheduler noise out of the verdict.
  TPUT_JSON="$BUILD_DIR/bench_gate_tput.json"
  "$BUILD_DIR/bench/micro_operators" \
      --benchmark_filter='BM_Batch|BM_Scalar' \
      --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
      --benchmark_format=json > "$TPUT_JSON"
  python3 - "$TPUT_JSON" "$BASELINE_DIR/throughput_budget.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
budget = json.load(open(sys.argv[2]))
items = {b["name"]: b["items_per_second"]
         for b in d["benchmarks"]
         if b.get("aggregate_name") == "median" and "items_per_second" in b}
def lookup(name):
    v = items.get(name + "_median")
    if v is None:
        sys.exit(f"benchmark {name} missing from micro_operators output")
    return v
failures = []
for pair in budget["pairs"]:
    batch = lookup(pair["batch"])
    scalar = lookup(pair["scalar"])
    speedup = batch / scalar if scalar > 0 else float("inf")
    verdicts = []
    if speedup < pair["min_speedup"]:
        verdicts.append(f"speedup {speedup:.2f}x < {pair['min_speedup']}x")
    floor = pair.get("min_batch_items_per_s", 0)
    if batch < floor:
        verdicts.append(f"batch {batch:.3g}/s < floor {floor:.3g}/s")
    status = "OK" if not verdicts else "; ".join(verdicts)
    print(f"{pair['label']}: vectorized {batch / 1e6:.1f} M elem/s, "
          f"scalar {scalar / 1e6:.1f} M elem/s, "
          f"speedup {speedup:.2f}x (need {pair['min_speedup']}x) {status}")
    if verdicts:
        failures.append(pair["label"])
if failures:
    sys.exit("kernel throughput gate failed: " + " ".join(failures))
EOF
fi

if [ "${PDSP_GATE_SKIP_SWEEP:-0}" != "1" ]; then
  SWEEP_JOBS="${PDSP_GATE_SWEEP_JOBS:-4}"
  step "parallel sweep pair (16 cells, jobs=1 vs jobs=$SWEEP_JOBS)"
  # The same 16-cell parallelism sweep run twice: sequentially and fanned
  # across $SWEEP_JOBS workers. The simulator is deterministic in virtual
  # time, so both legs must produce bit-identical per-cell ledger records;
  # each leg also appends one summary record (parallelism = worker count,
  # host_wall_s = sweep wall clock) used to report the speedup.
  SWEEP_LEDGER_1="$BUILD_DIR/bench_gate_sweep_jobs1.jsonl"
  SWEEP_LEDGER_N="$BUILD_DIR/bench_gate_sweep_jobsN.jsonl"
  rm -f "$SWEEP_LEDGER_1" "$SWEEP_LEDGER_N"
  SWEEP_ARGS="--structure=linear --rate=20000
              --parallelism=1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16
              --nodes=16 --duration=1.0 --seed=42 --profile --mem-profile"
  # Both legs run with live monitoring (--progress=plain) AND both samplers
  # (--profile, --mem-profile) on: all three only observe host-side state,
  # so the bit-identical assertion below also proves that neither the
  # telemetry thread nor either sampler perturbs per-cell virtual-time
  # results.
  "$PDSPBENCH" $SWEEP_ARGS --jobs=1 --ledger="$SWEEP_LEDGER_1" \
      --progress=plain > /dev/null
  "$PDSPBENCH" $SWEEP_ARGS --jobs="$SWEEP_JOBS" --ledger="$SWEEP_LEDGER_N" \
      --progress=plain > /dev/null
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$SWEEP_LEDGER_1" "$SWEEP_LEDGER_N" <<'EOF'
import json, sys

def load(path):
    cells, summaries = [], []
    for line in open(path):
        r = json.loads(line)
        (summaries if r["label"].startswith("sweep/") else cells).append(r)
    return cells, summaries

# Fields that identify the run or the host footprint, not the simulated
# outcome — allowed to differ between the two legs. "profile" is the
# sampled-CPU summary and "memory" the sampled-allocation summary: both
# measure real host behavior, inherently volatile across runs.
VOLATILE = {"run_id", "timestamp_utc", "host", "profile", "memory"}

# Diagnosis codes derived from the allocation profile (PDSP-M3xx) inherit
# its volatility: sample counts differ run to run, so whether a memory
# diagnostic fires is not deterministic. Simulated-outcome diagnostics
# (backpressure, skew, ...) must still match exactly.
def stable_codes(record):
    codes = record.get("diagnosis_codes")
    if isinstance(codes, list):
        record = dict(record)
        record["diagnosis_codes"] = [
            c for c in codes if not str(c).startswith("PDSP-M3")]
    return record

cells1, sum1 = load(sys.argv[1])
cellsN, sumN = load(sys.argv[2])
assert len(cells1) == len(cellsN) == 16, \
    f"expected 16 cells per leg, got {len(cells1)} vs {len(cellsN)}"
for a, b in zip(cells1, cellsN):
    a, b = stable_codes(a), stable_codes(b)
    keys = set(a) | set(b)
    diff = [k for k in sorted(keys - VOLATILE) if a.get(k) != b.get(k)]
    assert not diff, f"{a['label']}: jobs=1 vs jobs=N differ on {diff}"
assert len(sum1) == 1 and len(sumN) == 1, "missing sweep summary record"
w1, wN = sum1[0]["host"]["wall_s"], sumN[0]["host"]["wall_s"]
jobs = sumN[0]["parallelism"]
speedup = w1 / wN if wN > 0 else float("nan")
print(f"16 cells bit-identical across legs; "
      f"jobs=1 wall {w1:.2f}s, jobs={jobs} wall {wN:.2f}s, "
      f"speedup {speedup:.2f}x")
EOF
  else
    echo "python3 not found; sweep legs ran but were not compared"
  fi

  step "report generation timing (pdspbench report over the sweep ledger)"
  REPORT_OUT="$BUILD_DIR/bench_gate_report.html"
  REPORT_START_NS=$(date +%s%N)
  "$PDSPBENCH" report "$SWEEP_LEDGER_N" --out="$REPORT_OUT" \
      --title="bench_gate sweep report"
  REPORT_END_NS=$(date +%s%N)
  echo "report generated in $(( (REPORT_END_NS - REPORT_START_NS) / 1000000 )) ms -> $REPORT_OUT"
fi

if [ "${PDSP_GATE_SKIP_MEM:-0}" != "1" ] && \
    [ -f "$BASELINE_DIR/mem_budget.json" ] && \
    command -v python3 >/dev/null 2>&1; then
  step "allocation budget gate (bytes/tuple vs $BASELINE_DIR/mem_budget.json)"
  # Re-measures each budgeted workload with --mem-profile at the budget
  # file's sampling interval and fails when any per-run bytes-per-tuple
  # estimate exceeds its checked-in ceiling. Budgets are deliberately
  # generous (~2x measured) — this catches an allocation regression like an
  # accidental per-firing copy, not sampling noise; it also locks in the
  # win when the columnar data-plane refactor lands.
  python3 - "$PDSPBENCH" "$BASELINE_DIR/mem_budget.json" "$BUILD_DIR" <<'EOF'
import json, subprocess, sys
pdspbench, budget_path, build_dir = sys.argv[1:4]
budget = json.load(open(budget_path))
proto = budget["protocol"]
failures = []
for entry in budget["budgets"]:
    ledger = f"{build_dir}/bench_gate_mem_{entry['label']}.jsonl"
    open(ledger, "w").close()
    cmd = [pdspbench, entry["selector"],
           f"--rate={proto['rate']}",
           f"--parallelism={proto['parallelism']}",
           f"--nodes={proto['nodes']}",
           f"--duration={proto['duration_s']}",
           f"--seed={proto['seed']}",
           f"--mem-profile={budget['interval_kib']}",
           f"--ledger={ledger}"]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    records = [json.loads(line) for line in open(ledger)]
    mem = records[-1].get("memory")
    if mem is None:
        print(f"{entry['label']}: no memory summary (interposition "
              "compiled out?) — skipping")
        continue
    bpt = mem["bytes_per_tuple"]
    limit = entry["max_bytes_per_tuple"]
    verdict = "OK" if bpt <= limit else "OVER BUDGET"
    print(f"{entry['label']}: {bpt:.1f} B/tuple "
          f"(budget {limit:.0f}, peak heap "
          f"{mem['peak_heap_bytes'] / 1048576:.1f} MiB) {verdict}")
    if bpt > limit:
        failures.append(entry["label"])
if failures:
    sys.exit("allocation budget exceeded: " + " ".join(failures))
EOF
fi

step "baseline checks ($APPS; threshold=$THRESHOLD, sigmas=$SIGMAS)"
FAILED=""
for app in $APPS; do
  echo
  echo "--- $app ---"
  if ! "$PDSPBENCH" baseline check "$app" --dir="$BASELINE_DIR" \
      --ledger="$LEDGER" --threshold="$THRESHOLD" --sigmas="$SIGMAS"; then
    FAILED="$FAILED $app"
  fi
done

if [ -n "$FAILED" ]; then
  echo
  echo "bench_gate: REGRESSED:$FAILED" >&2
  exit 1
fi

step "OK (records appended to $LEDGER)"
