// pdsp::obs::prof — in-process sampling CPU profiler with no external
// dependencies. RAII ProfScope markers push frames (phase / app / operator /
// kernel) onto a lock-free fixed-depth thread-local marker stack; a
// background sampler thread walks the registered threads at a fixed cadence
// (default 97 Hz — prime, so it cannot alias a periodic workload), reads
// each thread's per-thread CPU clock delta and aggregates weighted folded
// stacks. Attribution is therefore real CPU seconds, not wall-clock guesses,
// and the design is async-signal-free by construction: no SIGPROF handler
// ever interrupts arbitrary code, the sampler only reads atomics and clocks
// from its own thread (see DESIGN.md "CPU profiling" for the trade-off).
//
// Concurrency contract:
//   * Marker slots, depth and the sequence counter are individual atomics —
//     the writer (the marked thread) uses relaxed/release stores, the
//     sampler validates each snapshot with a seqlock-style sequence check
//     and drops torn reads (counted in CpuProfile::dropped). No locks on
//     the marker path, no data races by construction (TSan-clean).
//   * When no profiler is running, ProfScope costs one relaxed atomic load
//     and a branch — cheap enough for the simulator's per-firing loop.
//   * Thread registration/unregistration takes a global mutex; the sampler
//     copies the registry under that mutex and reads thread CPU clocks
//     outside it, skipping entries whose thread has exited.

#ifndef PDSP_OBS_PROF_H_
#define PDSP_OBS_PROF_H_

#include <time.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/store/json.h"

namespace pdsp {
namespace obs {
namespace prof {

/// What a marker frame annotates, outermost to innermost in a well-formed
/// stack: harness phase -> application -> logical operator -> kernel.
enum class FrameKind : uint8_t { kPhase = 0, kApp = 1, kOperator = 2, kKernel = 3 };

/// Short stable label ("phase", "app", "op", "kernel") used in folded-stack
/// strings and the flame graph.
const char* FrameKindName(FrameKind kind);

/// Interns `name` into the process-wide name table and returns its id
/// (always >= 1; id 0 is reserved for "no name" and renders "(anon)").
/// Intern once on a cold path (e.g. when a run starts) and hand the id to
/// ProfScope so the hot path never touches strings.
uint32_t InternName(const std::string& name);

/// Name for an interned id; "" for 0 or an unknown id.
std::string LookupName(uint32_t id);

/// A marker frame packed into one atomic word: kind in bits [32,40),
/// interned name id in bits [0,32). 0 means "empty slot".
constexpr uint64_t PackFrame(FrameKind kind, uint32_t name_id) {
  return (static_cast<uint64_t>(kind) << 32) | name_id;
}
constexpr FrameKind FrameKindOf(uint64_t frame) {
  return static_cast<FrameKind>((frame >> 32) & 0xffu);
}
constexpr uint32_t FrameNameOf(uint64_t frame) {
  return static_cast<uint32_t>(frame & 0xffffffffu);
}

/// Deeper nesting than this is truncated (counted, never UB): pushes beyond
/// the limit only bump the logical depth so pops stay paired.
inline constexpr int kMaxMarkerDepth = 16;

/// \brief Fixed-depth lock-free marker stack, one per registered thread.
/// Written only by the owning thread; read by the sampler through
/// Snapshot(), which detects concurrent mutation with a sequence counter
/// and reports a torn read instead of returning a frankenstack.
class MarkerStack {
 public:
  void Push(FrameKind kind, uint32_t name_id) {
    const uint32_t d = depth_.load(std::memory_order_relaxed);
    if (d < static_cast<uint32_t>(kMaxMarkerDepth)) {
      seq_.fetch_add(1, std::memory_order_acq_rel);  // odd: write in progress
      frames_[d].store(PackFrame(kind, name_id), std::memory_order_relaxed);
      depth_.store(d + 1, std::memory_order_relaxed);
      seq_.fetch_add(1, std::memory_order_release);  // even: consistent again
    } else {
      truncated_.fetch_add(1, std::memory_order_relaxed);
      depth_.store(d + 1, std::memory_order_relaxed);  // keep pops paired
    }
  }

  void Pop() {
    const uint32_t d = depth_.load(std::memory_order_relaxed);
    if (d == 0) return;  // unbalanced pop: ignore rather than corrupt
    if (d <= static_cast<uint32_t>(kMaxMarkerDepth)) {
      seq_.fetch_add(1, std::memory_order_acq_rel);
      depth_.store(d - 1, std::memory_order_relaxed);
      seq_.fetch_add(1, std::memory_order_release);
    } else {
      depth_.store(d - 1, std::memory_order_relaxed);  // truncated region
    }
  }

  /// Copies up to kMaxMarkerDepth frames into `out` and returns the count,
  /// or -1 if the stack kept changing across `max_attempts` tries (the
  /// caller should count the sample as dropped).
  int Snapshot(uint64_t (&out)[kMaxMarkerDepth], int max_attempts = 3) const {
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      const uint64_t before = seq_.load(std::memory_order_acquire);
      if (before & 1) continue;  // writer mid-flight
      uint32_t d = depth_.load(std::memory_order_relaxed);
      if (d > static_cast<uint32_t>(kMaxMarkerDepth)) {
        d = static_cast<uint32_t>(kMaxMarkerDepth);
      }
      for (uint32_t i = 0; i < d; ++i) {
        out[i] = frames_[i].load(std::memory_order_relaxed);
      }
      // The re-check is an acq_rel RMW rather than a fence + relaxed load:
      // its release half keeps the frame loads above from sinking past it,
      // and unlike std::atomic_thread_fence it is instrumented by TSan.
      // At <= 2 kHz sampling the extra write is noise.
      if (seq_.fetch_add(0, std::memory_order_acq_rel) == before) {
        return static_cast<int>(d);
      }
    }
    return -1;
  }

  /// Pushes that fell off the fixed-depth end (cumulative for the thread).
  int64_t truncated() const {
    return truncated_.load(std::memory_order_relaxed);
  }

  /// Current logical depth (may exceed kMaxMarkerDepth when truncating).
  uint32_t depth() const { return depth_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint32_t> depth_{0};
  mutable std::atomic<uint64_t> seq_{0};
  std::atomic<int64_t> truncated_{0};
  std::array<std::atomic<uint64_t>, kMaxMarkerDepth> frames_{};
};

/// \brief Registry entry for one sampled thread. Created by
/// ThreadRegistration; the sampler holds shared_ptr copies, so the entry
/// outlives the thread and `alive` tells the sampler to stop reading its
/// CPU clock.
struct ThreadEntry {
  std::string name;
  ::clockid_t cpu_clock{};
  bool clock_valid = false;
  std::atomic<bool> alive{true};
  MarkerStack stack;
};

/// \brief RAII registration of the calling thread with the profiler
/// machinery (CPU clock id + marker stack). Nested registration on an
/// already-registered thread is a no-op, so pool workers registered for the
/// pool's lifetime compose with per-cell registrations in the harness.
class ThreadRegistration {
 public:
  explicit ThreadRegistration(const std::string& name);
  ~ThreadRegistration();

  ThreadRegistration(const ThreadRegistration&) = delete;
  ThreadRegistration& operator=(const ThreadRegistration&) = delete;

  /// False when this was a nested (no-op) registration.
  bool owner() const { return entry_ != nullptr; }

 private:
  std::shared_ptr<ThreadEntry> entry_;  // null when nested
};

/// The calling thread's registry entry, or nullptr when unregistered.
ThreadEntry* CurrentThreadEntry();

namespace detail {
/// Count of running Profilers; gates every ProfScope.
extern std::atomic<int> active_profilers;
}  // namespace detail

/// True while at least one Profiler is sampling — the only state ProfScope
/// reads before deciding to do nothing.
inline bool ProfilingActive() {
  return detail::active_profilers.load(std::memory_order_relaxed) > 0;
}

/// \brief RAII marker: pushes one frame on the calling thread's marker
/// stack for its scope. No-op (one relaxed load + branch) when no profiler
/// is running, the thread is unregistered, or `name_id` is 0.
class ProfScope {
 public:
  ProfScope(FrameKind kind, uint32_t name_id) {
    if (name_id == 0 || !ProfilingActive()) return;
    ThreadEntry* entry = CurrentThreadEntry();
    if (entry == nullptr) return;
    stack_ = &entry->stack;
    stack_->Push(kind, name_id);
  }

  /// Interns `name` (only when a profiler is active — keep off hot paths;
  /// pre-intern and use the id overload there).
  ProfScope(FrameKind kind, const char* name);
  ProfScope(FrameKind kind, const std::string& name);

  ~ProfScope() {
    if (stack_ != nullptr) stack_->Pop();
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  MarkerStack* stack_ = nullptr;
};

/// \brief Profiler configuration (CLI: --profile[=HZ]).
struct ProfOptions {
  bool enabled = false;
  /// Sampling cadence; clamped to [1, 2000] at Start. 97 is prime, so the
  /// sampler cannot phase-lock with periodic simulator work.
  double hz = 97.0;
  /// false: sample only the thread that calls Start() — the right scope for
  /// per-cell profiles in a parallel sweep, where a global walk would
  /// attribute sibling cells' CPU to this cell. true: walk every registered
  /// thread (pool workers included).
  bool all_threads = false;
};

struct FoldedSample {
  std::string stack;  ///< "phase:simulate;app:WC;op:count" ("" never occurs)
  int64_t samples = 0;
  double cpu_s = 0.0;
};

struct FrameTotal {
  std::string name;
  int64_t samples = 0;
  double cpu_s = 0.0;
};

struct ThreadCpu {
  std::string name;
  int64_t samples = 0;
  double cpu_s = 0.0;
};

inline constexpr int kProfileSchemaVersion = 1;

/// \brief Aggregated result of one profiling session. Telescoping
/// invariants (validated in tests): sum(folded.cpu_s) == total_cpu_s ==
/// sum(operators.cpu_s) == sum(phases.cpu_s) — operators/phases partition
/// every sample by its innermost operator / outermost phase frame, with
/// "(none)" buckets for samples that had no such frame.
struct CpuProfile {
  int schema_version = kProfileSchemaVersion;
  double hz = 0.0;          ///< effective cadence the sampler ran at
  double duration_s = 0.0;  ///< wall-clock Start..Stop
  double total_cpu_s = 0.0; ///< CPU seconds attributed across all samples
  int64_t samples = 0;      ///< thread-samples with a positive CPU delta
  int64_t dropped = 0;      ///< torn marker-stack reads (CPU kept, stack "(torn)")
  int64_t truncated = 0;    ///< marker pushes beyond kMaxMarkerDepth
  double sampler_cpu_s = 0.0;  ///< CPU the sampler thread itself burned
  std::vector<FoldedSample> folded;    ///< sorted by stack string
  std::vector<FrameTotal> operators;   ///< sorted by cpu_s desc, name asc
  std::vector<FrameTotal> phases;      ///< sorted by cpu_s desc, name asc
  std::vector<ThreadCpu> threads;      ///< sorted by name

  bool empty() const { return samples == 0; }

  Json ToJson() const;
  /// Rejects documents whose schema_version != kProfileSchemaVersion;
  /// otherwise lenient (missing keys read as empty/zero).
  static Result<CpuProfile> FromJson(const Json& json);
};

/// \brief Background-thread sampling profiler. Start() spawns the sampler;
/// Stop() joins it (taking one final sample first, so even sub-tick runs
/// yield data) and returns the aggregated CpuProfile. The destructor stops
/// a still-running session and discards its result.
class Profiler {
 public:
  explicit Profiler(const ProfOptions& options);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Spawns the sampler thread. With all_threads=false the calling thread
  /// must already be registered (ThreadRegistration) — it becomes the only
  /// sampled thread. FailedPrecondition when already running or the calling
  /// thread is unregistered.
  Status Start();

  /// Joins the sampler and aggregates. Returns an empty profile when Start
  /// was never (successfully) called.
  CpuProfile Stop();

  bool running() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace prof
}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_PROF_H_
