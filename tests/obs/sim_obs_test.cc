// Observability-through-the-simulator tests: registry counters must agree
// exactly with SimResult fields, time-series sampling must produce a
// predictable row grid, and exported traces must be valid Chrome
// trace_event JSON.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/artifacts.h"
#include "src/obs/trace.h"
#include "src/sim/simulation.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

Result<SimResult> RunLinear(double duration_s, double interval_s,
                            obs::Tracer* tracer = nullptr) {
  auto plan = testing::LinearPlan(2000.0, 2);
  if (!plan.ok()) return plan.status();
  ExecutionOptions opt;
  opt.sim.duration_s = duration_s;
  opt.sim.warmup_s = 0.25;
  opt.sim.seed = 7;
  opt.sim.metrics_interval_s = interval_s;
  opt.sim.tracer = tracer;
  return ExecutePlan(*plan, Cluster::M510(4), opt);
}

TEST(SimObsTest, RegistryCountersMatchSimResult) {
  auto r = RunLinear(2.0, 0.25);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r->metrics, nullptr);
  const obs::MetricsRegistry& reg = *r->metrics;
  EXPECT_GT(r->source_tuples, 0);
  EXPECT_EQ(reg.CounterValue("pdsp.sim.source_tuples"), r->source_tuples);
  EXPECT_EQ(reg.CounterValue("pdsp.sim.sink_tuples"), r->sink_tuples);
  EXPECT_EQ(reg.CounterValue("pdsp.sim.backpressure_skipped"),
            r->backpressure_skipped);
  EXPECT_EQ(reg.CounterValue("pdsp.sim.late_drops"), r->late_drops);
  EXPECT_EQ(reg.CounterValue("pdsp.sim.events_processed"),
            r->events_processed);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("pdsp.sim.throughput_tps"),
                   r->throughput_tps);
}

TEST(SimObsTest, TimeSeriesRowGridAndMonotonicity) {
  const double duration = 2.0;
  const double interval = 0.25;
  auto r = RunLinear(duration, interval);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const obs::TimeSeries& ts = r->timeseries;
  ASSERT_FALSE(ts.empty());

  const std::vector<double> times = ts.SampleTimes();
  const auto expected =
      static_cast<int64_t>(std::floor(duration / interval));
  EXPECT_GE(static_cast<int64_t>(times.size()), expected - 1);
  EXPECT_LE(static_cast<int64_t>(times.size()), expected + 1);

  double prev = -1.0;
  for (const obs::TimeSeriesRow& row : ts.rows()) {
    EXPECT_GE(row.time_s, prev);  // non-decreasing across the whole series
    prev = row.time_s;
    EXPECT_GE(row.queue_tuples, 0);
    EXPECT_GE(row.utilization, 0.0);
    EXPECT_LE(row.utilization, 1.0);
    EXPECT_GE(row.watermark_lag_s, 0.0);
    EXPECT_FALSE(row.op.empty());
  }
  // Every sample covers every task exactly once.
  const size_t tasks_per_sample = ts.NumRows() / times.size();
  EXPECT_EQ(ts.NumRows(), tasks_per_sample * times.size());
}

TEST(SimObsTest, SamplingDisabledProducesNoRows) {
  auto r = RunLinear(1.0, 0.0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->timeseries.empty());
  // The registry stays populated even with sampling off.
  EXPECT_EQ(r->metrics->CounterValue("pdsp.sim.source_tuples"),
            r->source_tuples);
}

TEST(SimObsTest, TimeSeriesCsvHasHeaderAndAllRows) {
  auto r = RunLinear(1.0, 0.25);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::string csv = r->timeseries.ToCsv();
  size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, r->timeseries.NumRows() + 1);
  EXPECT_EQ(csv.find("time_s,task,op,instance"), 0u);
}

// Trace export: every event the simulator emits must be complete ("X" with
// ts+dur), instant, counter or metadata — parsed back via the JSON parser.
TEST(SimObsTest, TraceExportsValidChromeTraceJson) {
  obs::Tracer tracer;
  tracer.set_verbose(true);
  auto r = RunLinear(1.0, 0.25, &tracer);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(tracer.NumEvents(), 0u);

  auto parsed = Json::Parse(tracer.ToJson().Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& doc = *parsed;
  ASSERT_TRUE(doc["traceEvents"].is_array());
  ASSERT_GT(doc["traceEvents"].size(), 0u);

  std::set<std::string> names;
  for (size_t i = 0; i < doc["traceEvents"].size(); ++i) {
    const Json& e = doc["traceEvents"].at(i);
    ASSERT_TRUE(e["name"].is_string());
    ASSERT_TRUE(e["ph"].is_string());
    const std::string ph = e["ph"].AsString();
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "C" || ph == "M") << ph;
    if (ph == "X") {
      // Complete events carry both endpoints — the balanced analogue of
      // B/E pairs.
      ASSERT_TRUE(e["ts"].is_number());
      ASSERT_TRUE(e["dur"].is_number());
      EXPECT_GE(e["dur"].AsNumber(), 0.0);
    }
    names.insert(e["name"].AsString());
  }
  // Phase spans from ExecutePlan and the engine.
  EXPECT_TRUE(names.count("expand"));
  EXPECT_TRUE(names.count("place"));
  EXPECT_TRUE(names.count("simulate"));
  EXPECT_TRUE(names.count("aggregate"));
  // Verbose mode records operator firings on the virtual timeline.
  EXPECT_TRUE(names.count("src"));
  EXPECT_TRUE(names.count("sink"));
}

TEST(SimObsTest, ArtifactBundleWritesAllThreeFiles) {
  obs::Tracer tracer;
  auto r = RunLinear(1.0, 0.25, &tracer);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const std::string dir =
      ::testing::TempDir() + "/pdsp_obs_bundle_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  Status st = obs::WriteRunArtifacts(dir, *r, &tracer);
  ASSERT_TRUE(st.ok()) << st.ToString();

  for (const char* file : {"metrics.json", "timeseries.csv", "trace.json"}) {
    SCOPED_TRACE(file);
    std::ifstream in(dir + "/" + file);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_FALSE(buf.str().empty());
    if (std::string(file).find(".json") != std::string::npos) {
      auto doc = Json::Parse(buf.str());
      EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    }
  }

  auto metrics = Json::Parse([&] {
    std::ifstream in(dir + "/metrics.json");
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }());
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ((*metrics)["summary"]["sink_tuples"].AsInt(), r->sink_tuples);
  EXPECT_EQ(
      (*metrics)["metrics"]["counters"]["pdsp.sim.source_tuples"].AsInt(),
      r->source_tuples);
}

}  // namespace
}  // namespace pdsp
