// Stream elements: a tuple plus the birth timestamp of its earliest
// contributing source tuple. End-to-end latency at the sink is
// (delivery time - birth), which per the paper's definition includes window
// residence time and every queueing/network delay along the way.

#ifndef PDSP_RUNTIME_ELEMENT_H_
#define PDSP_RUNTIME_ELEMENT_H_

#include "src/data/value.h"

namespace pdsp {

/// \brief One in-flight stream element.
struct StreamElement {
  Tuple tuple;
  /// Production time of the earliest source tuple that contributed to this
  /// element (== tuple.event_time for raw source tuples).
  double birth = 0.0;
};

}  // namespace pdsp

#endif  // PDSP_RUNTIME_ELEMENT_H_
