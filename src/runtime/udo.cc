#include "src/runtime/udo.h"

#include <cmath>

namespace pdsp {

namespace {

class NoopUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    out->push_back(e);
  }
};

class SampleUdo : public Udo {
 public:
  explicit SampleUdo(double keep) : keep_(keep) {}
  void Process(const StreamElement& e, UdoContext* ctx,
               std::vector<StreamElement>* out) override {
    if (ctx->rng->Bernoulli(keep_)) out->push_back(e);
  }

 private:
  double keep_;
};

class ReplicateUdo : public Udo {
 public:
  explicit ReplicateUdo(double fanout) : fanout_(fanout) {}
  void Process(const StreamElement& e, UdoContext* ctx,
               std::vector<StreamElement>* out) override {
    const auto whole = static_cast<int64_t>(fanout_);
    int64_t copies = whole;
    copies += ctx->rng->Bernoulli(fanout_ - static_cast<double>(whole)) ? 1 : 0;
    for (int64_t i = 0; i < copies; ++i) out->push_back(e);
  }

 private:
  double fanout_;
};

class KeyCountUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.empty()) return;
    const int64_t count = ++counts_[e.tuple.values[0]];
    StreamElement result = e;
    result.tuple.values.push_back(Value(count));
    out->push_back(std::move(result));
  }

 private:
  std::map<Value, int64_t> counts_;
};

}  // namespace

UdoRegistry::UdoRegistry() {
  const UdoTraits pure{/*pure=*/true, /*rng=*/false, /*order_sensitive=*/false};
  const UdoTraits rng{/*pure=*/false, /*rng=*/true, /*order_sensitive=*/false};
  const UdoTraits ordered{/*pure=*/false, /*rng=*/false,
                          /*order_sensitive=*/true};
  Register("noop", [](const OperatorDescriptor&) {
    return std::make_unique<NoopUdo>();
  }, pure);
  Register("heavy", [](const OperatorDescriptor&) {
    return std::make_unique<NoopUdo>();  // cost comes from the cost model
  }, pure);
  Register("sample", [](const OperatorDescriptor& op) {
    return std::make_unique<SampleUdo>(op.udo_selectivity);
  }, rng);
  Register("replicate", [](const OperatorDescriptor& op) {
    return std::make_unique<ReplicateUdo>(op.udo_selectivity);
  }, rng);
  Register("key_count", [](const OperatorDescriptor&) {
    return std::make_unique<KeyCountUdo>();
  }, ordered);
}

UdoRegistry& UdoRegistry::Global() {
  static UdoRegistry* registry = new UdoRegistry();
  return *registry;
}

void UdoRegistry::Register(const std::string& kind, UdoFactory factory) {
  MutexLock lock(mu_);
  factories_[kind] = std::move(factory);
  traits_.erase(kind);  // re-registering without traits resets to unknown
}

void UdoRegistry::Register(const std::string& kind, UdoFactory factory,
                           const UdoTraits& traits) {
  MutexLock lock(mu_);
  factories_[kind] = std::move(factory);
  traits_[kind] = traits;
}

std::optional<UdoTraits> UdoRegistry::TraitsOf(const std::string& kind) const {
  MutexLock lock(mu_);
  auto it = traits_.find(kind);
  if (it == traits_.end()) return std::nullopt;
  return it->second;
}

Result<std::unique_ptr<Udo>> UdoRegistry::Create(
    const OperatorDescriptor& op) const {
  // Copy the factory out so it is invoked without the lock held: UDO
  // construction may be arbitrarily expensive and must not serialize
  // concurrent sweep cells.
  UdoFactory factory;
  {
    MutexLock lock(mu_);
    auto it = factories_.find(op.udo_kind);
    if (it == factories_.end()) {
      return Status::NotFound("unknown UDO kind '" + op.udo_kind + "'");
    }
    factory = it->second;
  }
  return factory(op);
}

bool UdoRegistry::Contains(const std::string& kind) const {
  MutexLock lock(mu_);
  return factories_.count(kind) != 0;
}

std::vector<std::string> UdoRegistry::Kinds() const {
  MutexLock lock(mu_);
  std::vector<std::string> kinds;
  kinds.reserve(factories_.size());
  for (const auto& [kind, factory] : factories_) kinds.push_back(kind);
  return kinds;
}

}  // namespace pdsp
