#include "src/data/generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/string_util.h"

namespace pdsp {

const char* FieldDistributionToString(FieldDistribution dist) {
  switch (dist) {
    case FieldDistribution::kUniformInt:
      return "uniform_int";
    case FieldDistribution::kUniformDouble:
      return "uniform_double";
    case FieldDistribution::kNormalDouble:
      return "normal_double";
    case FieldDistribution::kZipfKey:
      return "zipf_key";
    case FieldDistribution::kUniformKey:
      return "uniform_key";
    case FieldDistribution::kWordString:
      return "word_string";
    case FieldDistribution::kSequence:
      return "sequence";
    case FieldDistribution::kSentence:
      return "sentence";
  }
  return "?";
}

DataType FieldGeneratorSpec::OutputType() const {
  switch (dist) {
    case FieldDistribution::kUniformInt:
    case FieldDistribution::kZipfKey:
    case FieldDistribution::kUniformKey:
    case FieldDistribution::kSequence:
      return DataType::kInt;
    case FieldDistribution::kUniformDouble:
    case FieldDistribution::kNormalDouble:
      return DataType::kDouble;
    case FieldDistribution::kWordString:
    case FieldDistribution::kSentence:
      return DataType::kString;
  }
  return DataType::kInt;
}

Result<TupleGenerator> TupleGenerator::Create(
    Schema schema, std::vector<FieldGeneratorSpec> specs, uint64_t seed) {
  if (schema.NumFields() != specs.size()) {
    return Status::InvalidArgument(StrFormat(
        "schema has %zu fields but %zu generator specs were given",
        schema.NumFields(), specs.size()));
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].OutputType() != schema.field(i).type) {
      return Status::InvalidArgument(StrFormat(
          "field %zu ('%s') is %s but generator produces %s", i,
          schema.field(i).name.c_str(),
          DataTypeToString(schema.field(i).type),
          DataTypeToString(specs[i].OutputType())));
    }
    if (specs[i].min > specs[i].max) {
      return Status::InvalidArgument(
          StrFormat("field %zu: min > max", i));
    }
    if (specs[i].cardinality < 1) {
      return Status::InvalidArgument(
          StrFormat("field %zu: cardinality < 1", i));
    }
  }
  return TupleGenerator(std::move(schema), std::move(specs), seed);
}

Value TupleGenerator::GenerateField(const FieldGeneratorSpec& spec,
                                    size_t field_idx) {
  switch (spec.dist) {
    case FieldDistribution::kUniformInt:
      return rng_.UniformInt(static_cast<int64_t>(spec.min),
                             static_cast<int64_t>(spec.max));
    case FieldDistribution::kUniformDouble:
      return rng_.Uniform(spec.min, spec.max);
    case FieldDistribution::kNormalDouble: {
      const double mean = (spec.min + spec.max) / 2.0;
      const double sd = (spec.max - spec.min) / 6.0;
      return std::clamp(rng_.Normal(mean, sd), spec.min, spec.max);
    }
    case FieldDistribution::kZipfKey:
      return rng_.Zipf(spec.cardinality, spec.zipf_s);
    case FieldDistribution::kUniformKey:
      return rng_.UniformInt(1, spec.cardinality);
    case FieldDistribution::kWordString:
      return DictionaryWord(rng_.Zipf(spec.cardinality, spec.zipf_s) - 1);
    case FieldDistribution::kSentence: {
      const auto words = rng_.UniformInt(
          std::max<int64_t>(1, static_cast<int64_t>(spec.min)),
          std::max<int64_t>(1, static_cast<int64_t>(spec.max)));
      std::string sentence;
      for (int64_t w = 0; w < words; ++w) {
        if (w > 0) sentence += ' ';
        sentence += DictionaryWord(rng_.Zipf(spec.cardinality, spec.zipf_s) - 1);
      }
      return sentence;
    }
    case FieldDistribution::kSequence: {
      if (field_idx >= sequence_counters_.size()) {
        sequence_counters_.resize(field_idx + 1, 0);
      }
      return sequence_counters_[field_idx]++;
    }
  }
  return Value();
}

void TupleGenerator::AppendNext(double event_time, double birth,
                                uint32_t attr_id, data::Batch* out) {
  // Field order and RNG draw order must match Next() exactly. Numeric
  // distributions append straight into the typed columns; the string
  // distributions build a Value (they allocate anyway) and let the batch
  // intern it.
  for (size_t i = 0; i < specs_.size(); ++i) {
    const FieldGeneratorSpec& spec = specs_[i];
    switch (spec.dist) {
      case FieldDistribution::kUniformInt:
        out->AppendInt(i, rng_.UniformInt(static_cast<int64_t>(spec.min),
                                          static_cast<int64_t>(spec.max)));
        break;
      case FieldDistribution::kUniformDouble:
        out->AppendDouble(i, rng_.Uniform(spec.min, spec.max));
        break;
      case FieldDistribution::kNormalDouble: {
        const double mean = (spec.min + spec.max) / 2.0;
        const double sd = (spec.max - spec.min) / 6.0;
        out->AppendDouble(
            i, std::clamp(rng_.Normal(mean, sd), spec.min, spec.max));
        break;
      }
      case FieldDistribution::kZipfKey:
        out->AppendInt(i, rng_.Zipf(spec.cardinality, spec.zipf_s));
        break;
      case FieldDistribution::kUniformKey:
        out->AppendInt(i, rng_.UniformInt(1, spec.cardinality));
        break;
      case FieldDistribution::kSequence: {
        if (i >= sequence_counters_.size()) {
          sequence_counters_.resize(i + 1, 0);
        }
        out->AppendInt(i, sequence_counters_[i]++);
        break;
      }
      case FieldDistribution::kWordString:
      case FieldDistribution::kSentence:
        out->AppendValue(i, GenerateField(spec, i));
        break;
    }
  }
  out->FinishRow(event_time, birth, attr_id);
}

Tuple TupleGenerator::Next(double event_time) {
  Tuple t;
  t.event_time = event_time;
  t.values.reserve(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    t.values.push_back(GenerateField(specs_[i], i));
  }
  return t;
}

std::string DictionaryWord(int64_t index) {
  // Base-20 consonant-vowel pairs give pronounceable, unique, deterministic
  // words: 0 -> "baba"-style stems, stable across platforms.
  static const char* kConsonants = "bcdfghjklmnpqrstvwxz";
  static const char* kVowels = "aeiou";
  std::string word;
  int64_t v = index < 0 ? 0 : index;
  do {
    word += kConsonants[v % 20];
    word += kVowels[(v / 20) % 5];
    v /= 100;
  } while (v > 0);
  return word;
}

StreamSpec RandomStreamSpec(const SchemaRandomizerOptions& options, Rng* rng) {
  StreamSpec spec;
  const int width = static_cast<int>(rng->UniformInt(
      options.min_tuple_width, options.max_tuple_width));
  for (int i = 0; i < width; ++i) {
    FieldGeneratorSpec g;
    const double roll = rng->NextDouble();
    if (options.allow_strings && roll < 0.25) {
      g.dist = FieldDistribution::kWordString;
      g.cardinality = rng->UniformInt(100, 10000);
      g.zipf_s = rng->Uniform(0.5, 1.2);
    } else if (roll < 0.25 + options.key_field_fraction) {
      g.dist = FieldDistribution::kZipfKey;
      g.cardinality = rng->UniformInt(10, 100000);
      g.zipf_s = rng->Uniform(0.0, 1.5);
    } else if (roll < 0.75) {
      g.dist = FieldDistribution::kUniformInt;
      g.min = 0;
      g.max = static_cast<double>(rng->UniformInt(10, 1000000));
    } else {
      g.dist = rng->Bernoulli(0.5) ? FieldDistribution::kUniformDouble
                                   : FieldDistribution::kNormalDouble;
      g.min = 0;
      g.max = rng->Uniform(1.0, 1e6);
    }
    Field f;
    f.name = StrFormat("f%d", i);
    f.type = g.OutputType();
    Status st = spec.schema.AddField(f);
    (void)st;  // names are unique by construction
    spec.specs.push_back(g);
  }
  return spec;
}

}  // namespace pdsp
