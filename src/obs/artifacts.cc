#include "src/obs/artifacts.h"

#include <cmath>
#include <filesystem>
#include <fstream>

namespace pdsp {
namespace obs {

namespace {

Json FiniteNumber(double v) {
  return std::isfinite(v) ? Json::Number(v) : Json::Null();
}

Status WriteTextFile(const std::filesystem::path& path,
                     const std::string& text) {
  std::ofstream out(path);
  if (!out.good()) return Status::Internal("cannot open " + path.string());
  out << text;
  if (!out.good()) return Status::Internal("short write to " + path.string());
  return Status::OK();
}

/// Renames `tmp` onto `path` (atomic on POSIX within one filesystem).
Status RenameInto(const std::filesystem::path& tmp,
                  const std::filesystem::path& path) {
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot rename " + tmp.string() + " to " +
                            path.string() + ": " + ec.message());
  }
  return Status::OK();
}

/// Writes `text` to `<path>.tmp` and renames it into place, so a crashed or
/// concurrent writer never leaves a torn artifact behind.
Status WriteTextFileAtomic(const std::filesystem::path& path,
                           const std::string& text) {
  const std::filesystem::path tmp(path.string() + ".tmp");
  PDSP_RETURN_NOT_OK(WriteTextFile(tmp, text));
  return RenameInto(tmp, path);
}

}  // namespace

Json RunMetricsJson(const SimResult& result) {
  Json summary = Json::Object();
  summary.Set("median_latency_s", FiniteNumber(result.median_latency_s));
  summary.Set("mean_latency_s", FiniteNumber(result.mean_latency_s));
  summary.Set("p95_latency_s", FiniteNumber(result.p95_latency_s));
  summary.Set("p99_latency_s", FiniteNumber(result.p99_latency_s));
  summary.Set("throughput_tps", FiniteNumber(result.throughput_tps));
  summary.Set("source_tuples", Json::Int(result.source_tuples));
  summary.Set("sink_tuples", Json::Int(result.sink_tuples));
  summary.Set("backpressure_skipped", Json::Int(result.backpressure_skipped));
  summary.Set("late_drops", Json::Int(result.late_drops));
  summary.Set("events_processed", Json::Int(result.events_processed));
  summary.Set("virtual_time_end_s", FiniteNumber(result.virtual_time_end));

  Json ops = Json::Array();
  for (const OperatorRunStats& s : result.op_stats) {
    Json op = Json::Object();
    op.Set("name", Json::Str(s.name));
    op.Set("parallelism", Json::Int(s.parallelism));
    op.Set("tuples_in", Json::Int(s.tuples_in));
    op.Set("tuples_out", Json::Int(s.tuples_out));
    op.Set("late_drops", Json::Int(s.late_drops));
    op.Set("busy_time_s", FiniteNumber(s.busy_time_s));
    op.Set("utilization", FiniteNumber(s.utilization));
    op.Set("max_instance_util", FiniteNumber(s.max_instance_util));
    op.Set("max_queue_tuples", Json::Int(static_cast<int64_t>(
        s.max_queue_tuples)));
    Json lat = Json::Object();
    lat.Set("queue_wait_s", FiniteNumber(s.latency.MeanQueueWait()));
    lat.Set("network_in_s", FiniteNumber(s.latency.MeanNetworkIn()));
    lat.Set("service_s", FiniteNumber(s.latency.MeanService()));
    lat.Set("window_s", FiniteNumber(s.latency.MeanWindowResidency()));
    lat.Set("source_batch_s", FiniteNumber(s.latency.MeanSourceBatch()));
    lat.Set("path_cost_s", FiniteNumber(s.latency.MeanPathCost()));
    op.Set("latency", std::move(lat));
    ops.Append(std::move(op));
  }

  if (!result.breakdown.empty()) {
    Json b = Json::Object();
    b.Set("samples", Json::Int(result.breakdown.samples));
    b.Set("total_s", FiniteNumber(result.breakdown.total_s));
    b.Set("source_batch_s", FiniteNumber(result.breakdown.source_batch_s));
    b.Set("network_s", FiniteNumber(result.breakdown.network_s));
    b.Set("queue_s", FiniteNumber(result.breakdown.queue_s));
    b.Set("service_s", FiniteNumber(result.breakdown.service_s));
    b.Set("window_s", FiniteNumber(result.breakdown.window_s));
    summary.Set("latency_breakdown", std::move(b));
  }

  Json root = Json::Object();
  root.Set("summary", std::move(summary));
  root.Set("operators", std::move(ops));
  root.Set("metrics", result.metrics != nullptr ? result.metrics->ToJson()
                                                : Json::Object());
  return root;
}

Status WriteRunArtifacts(const std::string& dir, const SimResult& result,
                         const Tracer* tracer, const Diagnosis* diagnosis) {
  const std::filesystem::path base(dir);
  std::error_code ec;
  std::filesystem::create_directories(base, ec);
  if (ec && !std::filesystem::is_directory(base)) {
    return Status::Internal("cannot create " + dir + ": " + ec.message());
  }
  PDSP_RETURN_NOT_OK(WriteTextFileAtomic(
      base / "metrics.json", RunMetricsJson(result).Dump(2) + "\n"));
  if (!result.timeseries.empty()) {
    const std::filesystem::path ts = base / "timeseries.csv";
    PDSP_RETURN_NOT_OK(
        result.timeseries.WriteCsv((ts.string() + ".tmp")));
    PDSP_RETURN_NOT_OK(
        RenameInto(std::filesystem::path(ts.string() + ".tmp"), ts));
  }
  if (tracer != nullptr) {
    const std::filesystem::path tr = base / "trace.json";
    PDSP_RETURN_NOT_OK(tracer->WriteFile(tr.string() + ".tmp"));
    PDSP_RETURN_NOT_OK(
        RenameInto(std::filesystem::path(tr.string() + ".tmp"), tr));
  }
  if (diagnosis != nullptr) {
    PDSP_RETURN_NOT_OK(WriteTextFileAtomic(
        base / "diagnosis.json", diagnosis->ToJson().Dump(2) + "\n"));
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace pdsp
