#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/ml/decision_tree.h"
#include "src/ml/models.h"

namespace pdsp {

struct GradientBoostModel::Impl {
  double base = 0.0;  // initial prediction (mean log-latency)
  double learning_rate = 0.1;
  std::vector<RegressionTree> trees;

  double Predict(const Vector& x) const {
    double sum = base;
    for (const RegressionTree& t : trees) {
      sum += learning_rate * t.Predict(x);
    }
    return sum;
  }
};

GradientBoostModel::GradientBoostModel() : impl_(new Impl) {}
GradientBoostModel::~GradientBoostModel() = default;

Result<TrainReport> GradientBoostModel::Fit(const Dataset& train,
                                            const Dataset& val,
                                            const TrainOptions& options) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  if (options.gbt_learning_rate <= 0.0 || options.gbt_subsample <= 0.0 ||
      options.gbt_subsample > 1.0) {
    return Status::InvalidArgument("bad gbt hyperparameters");
  }
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(options.seed);
  impl_->trees.clear();
  impl_->learning_rate = options.gbt_learning_rate;

  std::vector<Vector> xs;
  std::vector<double> ys;
  for (const PlanSample& s : train.samples) {
    xs.push_back(s.flat);
    ys.push_back(std::log(s.latency_s));
  }
  double base = 0.0;
  for (double y : ys) base += y;
  impl_->base = base / static_cast<double>(ys.size());

  const Dataset& eval = val.empty() ? train : val;
  std::vector<double> val_ys;
  Vector val_pred(eval.size(), impl_->base);
  for (const PlanSample& s : eval.samples) {
    val_ys.push_back(std::log(s.latency_s));
  }

  // Residuals (squared loss => negative gradient is the residual).
  std::vector<double> residual(ys.size());
  Vector train_pred(ys.size(), impl_->base);

  TreeOptions topt;
  topt.max_depth = options.gbt_max_depth;
  topt.min_leaf = options.rf_min_leaf;
  topt.feature_fraction = options.rf_feature_fraction;

  TrainReport report;
  double best_val = 1e300;
  size_t best_size = 0;
  int stall = 0;

  for (int t = 0; t < options.gbt_max_trees; ++t) {
    for (size_t i = 0; i < ys.size(); ++i) {
      residual[i] = ys[i] - train_pred[i];
    }
    // Stochastic boosting: subsample rows per round.
    std::vector<int> idx;
    for (size_t i = 0; i < xs.size(); ++i) {
      if (rng.Bernoulli(options.gbt_subsample)) {
        idx.push_back(static_cast<int>(i));
      }
    }
    if (idx.empty()) idx.push_back(0);
    impl_->trees.push_back(
        FitRegressionTree(xs, residual, std::move(idx), topt, &rng));
    ++report.epochs_run;

    const RegressionTree& tree = impl_->trees.back();
    for (size_t i = 0; i < xs.size(); ++i) {
      train_pred[i] += impl_->learning_rate * tree.Predict(xs[i]);
    }
    double val_loss = 0.0;
    for (size_t i = 0; i < eval.size(); ++i) {
      val_pred[i] += impl_->learning_rate *
                     tree.Predict(eval.samples[i].flat);
      const double err = val_pred[i] - val_ys[i];
      val_loss += err * err;
    }
    val_loss /= static_cast<double>(eval.size());
    if (val_loss < best_val - 1e-6) {
      best_val = val_loss;
      best_size = impl_->trees.size();
      stall = 0;
    } else if (++stall >= options.patience) {
      report.early_stopped = true;
      break;
    }
  }
  impl_->trees.resize(std::max<size_t>(1, best_size));
  report.final_val_loss = best_val;
  report.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

Result<double> GradientBoostModel::PredictLatency(
    const PlanSample& sample) const {
  if (impl_->trees.empty()) return Status::FailedPrecondition("not fitted");
  return std::exp(std::clamp(impl_->Predict(sample.flat), -12.0, 12.0));
}

}  // namespace pdsp
