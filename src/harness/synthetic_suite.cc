#include "src/harness/synthetic_suite.h"

#include <algorithm>
#include <cmath>

#include "src/common/string_util.h"
#include "src/query/builder.h"

namespace pdsp {

namespace {

// (key zipf(keys, 0.4), v0 uniform[0,100)).
StreamSpec CanonicalStream(int64_t keys) {
  StreamSpec spec;
  (void)spec.schema.AddField({"key", DataType::kInt});
  (void)spec.schema.AddField({"v0", DataType::kDouble});
  FieldGeneratorSpec key;
  key.dist = FieldDistribution::kZipfKey;
  key.cardinality = keys;
  key.zipf_s = 0.4;
  FieldGeneratorSpec val;
  val.dist = FieldDistribution::kUniformDouble;
  val.min = 0.0;
  val.max = 100.0;
  spec.specs = {key, val};
  return spec;
}

ArrivalProcess::Options Poisson(double rate) {
  ArrivalProcess::Options a;
  a.rate = rate;
  return a;
}

}  // namespace

Result<LogicalPlan> MakeCanonicalSynthetic(SyntheticStructure structure,
                                           const CanonicalOptions& o) {
  WindowSpec window;
  window.type = WindowType::kTumbling;
  window.policy = WindowPolicy::kTime;
  window.duration_ms = o.window_ms;
  // Filter literal for P(v0 < x) = selectivity over uniform [0, 100).
  const Value literal(o.filter_selectivity * 100.0);

  PlanBuilder b;
  switch (structure) {
    case SyntheticStructure::kLinear:
    case SyntheticStructure::kChain2Filters:
    case SyntheticStructure::kChain3Filters:
    case SyntheticStructure::kAggregation:
    case SyntheticStructure::kFlatMapChain: {
      const int filters =
          structure == SyntheticStructure::kLinear          ? 1
          : structure == SyntheticStructure::kChain2Filters ? 2
          : structure == SyntheticStructure::kChain3Filters ? 3
          : structure == SyntheticStructure::kFlatMapChain  ? 1
                                                            : 0;
      auto cur = b.Source("src", CanonicalStream(o.agg_keys),
                          Poisson(o.event_rate), o.parallelism);
      if (structure == SyntheticStructure::kFlatMapChain) {
        cur = b.FlatMap("flatmap", cur, 2.0, o.parallelism);
      }
      for (int i = 0; i < filters; ++i) {
        // Chained filters on the same uniform field stay consistent because
        // each cut keeps the lower tail: conditional selectivity of filter
        // i+1 given filter i is sel (literals shrink geometrically).
        const Value lit(100.0 *
                        std::pow(o.filter_selectivity, i + 1));
        auto f = b.Filter(StrFormat("filter%d", i + 1), cur, 1,
                          FilterOp::kLt, lit, o.parallelism);
        b.WithSelectivityHint(f, o.filter_selectivity);
        cur = f;
      }
      cur = b.WindowAggregate("agg", cur, window, AggregateFn::kAvg,
                              /*agg=*/1, /*key=*/0, o.parallelism);
      b.Sink("sink", cur);
      return b.Build();
    }
    case SyntheticStructure::kTwoWayJoin:
    case SyntheticStructure::kThreeWayJoin:
    case SyntheticStructure::kFourWayJoin:
    case SyntheticStructure::kFilterJoinAgg: {
      const int sources = structure == SyntheticStructure::kThreeWayJoin ? 3
                          : structure == SyntheticStructure::kFourWayJoin
                              ? 4
                              : 2;
      // Join key space scales with window contents, as ID joins do.
      const int64_t join_keys = std::max<int64_t>(
          100, static_cast<int64_t>(o.event_rate * o.window_ms / 1000.0 *
                                    4.0));
      std::vector<PlanBuilder::OpId> branches;
      for (int i = 0; i < sources; ++i) {
        auto src = b.Source(StrFormat("src%d", i + 1),
                            CanonicalStream(join_keys),
                            Poisson(o.event_rate), o.parallelism);
        auto f = b.Filter(StrFormat("filter%d", i + 1), src, 1,
                          FilterOp::kLt, literal, o.parallelism);
        b.WithSelectivityHint(f, o.filter_selectivity);
        branches.push_back(f);
      }
      auto left = branches[0];
      for (int i = 1; i < sources; ++i) {
        left = b.WindowJoin(StrFormat("join%d", i), left, branches[i], 0, 0,
                            window, o.parallelism);
      }
      if (structure == SyntheticStructure::kFilterJoinAgg) {
        left = b.WindowAggregate("agg", left, window, AggregateFn::kAvg,
                                 /*agg=*/1, /*key=*/0, o.parallelism);
      }
      b.Sink("sink", left);
      return b.Build();
    }
  }
  return Status::InvalidArgument("unknown structure");
}

}  // namespace pdsp
