#include "src/ml/datagen.h"

#include <chrono>
#include <cmath>
#include <optional>
#include <utility>

#include "src/exec/thread_pool.h"

namespace pdsp {

namespace {

/// One generated-but-not-yet-simulated candidate query. Candidates are
/// produced sequentially (the generator/RNG state is a single stream), so
/// the attempt sequence — and with it every simulation seed — is identical
/// no matter how many workers later simulate them.
struct Candidate {
  LogicalPlan plan;
  SyntheticStructure structure;
  uint64_t sim_seed = 0;
};

struct SimOutcome {
  std::optional<Result<SimResult>> result;
  double seconds = 0.0;
};

SimOutcome SimulateCandidate(const Candidate& candidate,
                             const DataGenOptions& options,
                             const Cluster& cluster) {
  ExecutionOptions exec = options.execution;
  exec.sim.seed = candidate.sim_seed;
  SimOutcome outcome;
  const auto t0 = std::chrono::steady_clock::now();
  outcome.result.emplace(ExecutePlan(candidate.plan, cluster, exec));
  outcome.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return outcome;
}

}  // namespace

Result<DataGenResult> GenerateTrainingData(const DataGenOptions& options,
                                           const Cluster& cluster) {
  if (options.num_samples < 1) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  const std::vector<SyntheticStructure>& structures =
      options.structures.empty() ? AllSyntheticStructures()
                                 : options.structures;

  QueryGenerator generator(options.query, options.seed);
  Rng rng(options.seed * 1315423911ULL + 17);
  DataGenResult result;

  const int jobs = exec::ResolveJobs(options.jobs);
  std::optional<exec::ThreadPool> pool;
  if (jobs > 1) pool.emplace(jobs);

  int attempts = 0;
  const int max_attempts = options.num_samples * 4 + 32;
  // Wave loop: generate exactly as many candidates as samples are still
  // missing (a pure function of collection state, so the attempt sequence
  // matches the sequential one attempt-for-attempt), simulate the wave
  // across the workers, then consume outcomes in attempt order.
  while (static_cast<int>(result.dataset.size()) < options.num_samples &&
         attempts < max_attempts) {
    const int wave =
        std::min(options.num_samples - static_cast<int>(result.dataset.size()),
                 max_attempts - attempts);
    std::vector<Candidate> candidates;
    candidates.reserve(static_cast<size_t>(wave));
    for (int k = 0; k < wave; ++k) {
      ++attempts;
      const SyntheticStructure structure = rng.Choice(structures);
      PDSP_ASSIGN_OR_RETURN(LogicalPlan plan, generator.Generate(structure));

      // One parallelism assignment per query, drawn from the strategy.
      PDSP_ASSIGN_OR_RETURN(
          auto assignments,
          EnumerateParallelism(plan, options.strategy, options.enumeration,
                               &rng));
      if (assignments.empty()) {
        return Status::Internal("enumeration produced no assignments");
      }
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(assignments.size()) - 1));
      PDSP_RETURN_NOT_OK(ApplyParallelism(&plan, assignments[pick]));

      Candidate candidate;
      candidate.plan = std::move(plan);
      candidate.structure = structure;
      candidate.sim_seed =
          options.seed * 2654435761ULL + static_cast<uint64_t>(attempts);
      candidates.push_back(std::move(candidate));
    }

    // Simulate the wave. Each candidate is self-contained (own plan, own
    // seed); the shared cluster and execution options are read-only.
    std::vector<SimOutcome> outcomes(candidates.size());
    if (pool.has_value() && candidates.size() > 1) {
      std::vector<std::future<SimOutcome>> futures;
      futures.reserve(candidates.size());
      for (const Candidate& candidate : candidates) {
        futures.push_back(pool->Submit([&candidate, &options, &cluster]() {
          return SimulateCandidate(candidate, options, cluster);
        }));
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        outcomes[i] = futures[i].get();
      }
    } else {
      for (size_t i = 0; i < candidates.size(); ++i) {
        outcomes[i] = SimulateCandidate(candidates[i], options, cluster);
      }
    }

    // Consume in attempt order — the labeling decisions (discard vs
    // encode) replay exactly as a sequential run would make them.
    for (size_t i = 0; i < candidates.size(); ++i) {
      result.collection_seconds += outcomes[i].seconds;
      Result<SimResult>& sim = *outcomes[i].result;
      if (!sim.ok()) {
        // Pathological draws (e.g. join cascades that amplify beyond the
        // simulator's tuple budget) are discarded, not fatal — the paper's
        // generator likewise skips invalid workloads.
        if (sim.status().IsResourceExhausted()) {
          ++result.discarded;
          continue;
        }
        return sim.status();
      }
      if (sim->sink_tuples == 0 || std::isnan(sim->median_latency_s) ||
          sim->median_latency_s <= 0.0) {
        ++result.discarded;
        continue;
      }
      PDSP_ASSIGN_OR_RETURN(
          PlanSample sample,
          EncodeSample(candidates[i].plan, cluster, sim->median_latency_s,
                       static_cast<int>(candidates[i].structure)));
      result.dataset.samples.push_back(std::move(sample));
    }
  }
  if (result.dataset.empty()) {
    return Status::Internal("no query produced usable training data");
  }
  return result;
}

}  // namespace pdsp
