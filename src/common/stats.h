// Streaming and batch statistics used for metric collection: running
// mean/variance, percentile summaries over recorded samples, and fixed-width
// histograms. The paper reports the mean of three runs of median (p50)
// end-to-end latency; LatencyRecorder provides exactly those aggregations.

#ifndef PDSP_COMMON_STATS_H_
#define PDSP_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pdsp {

/// \brief Welford running mean / variance / min / max over a stream of
/// doubles, O(1) memory.
class RunningStats {
 public:
  void Add(double x);

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance; 0 with fewer than two samples.
  double variance() const { return count_ > 1 ? m2_ / count_ : 0.0; }
  double stddev() const;
  double min() const {
    return count_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return count_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  double sum() const { return mean_ * count_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Records individual samples (optionally reservoir-capped) and
/// answers percentile queries. Used for end-to-end latency collection.
class LatencyRecorder {
 public:
  /// `reservoir_capacity` == 0 keeps every sample.
  explicit LatencyRecorder(size_t reservoir_capacity = 0);

  void Record(double value);

  /// Percentile in [0, 100] by linear interpolation over sorted samples.
  /// NaN when no samples were recorded.
  double Percentile(double pct) const;

  /// Median, i.e. Percentile(50) — the paper's headline metric.
  double Median() const { return Percentile(50.0); }

  double Mean() const { return running_.mean(); }
  double Min() const { return running_.min(); }
  double Max() const { return running_.max(); }
  double Stddev() const { return running_.stddev(); }
  int64_t Count() const { return running_.count(); }

  /// Multi-line human-readable summary.
  std::string Summary() const;

 private:
  size_t capacity_;  // 0 = unbounded
  int64_t seen_ = 0;
  uint64_t rng_state_;
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  RunningStats running_;
};

/// \brief Fixed-bucket histogram over [lo, hi) with out-of-range samples
/// clamped into the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  int64_t BucketCount(size_t i) const { return counts_.at(i); }
  size_t NumBuckets() const { return counts_.size(); }
  int64_t TotalCount() const { return total_; }
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;

  /// ASCII bar rendering, one bucket per line.
  std::string ToString(size_t max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

/// \brief Exponential-bucket histogram for heavy-tailed positive values
/// such as end-to-end latencies, where fixed-width buckets waste resolution.
/// Bucket i >= 1 covers [lo*base^(i-1), lo*base^i); bucket 0 is the
/// underflow bucket [0, lo) and the last bucket absorbs everything >= hi.
class ExpHistogram {
 public:
  /// Defaults span 1 µs .. 100 s with base-1.5 growth (~48 buckets).
  explicit ExpHistogram(double lo = 1e-6, double hi = 100.0,
                        double base = 1.5);

  void Add(double x);

  /// Merges another histogram with identical geometry; mismatched
  /// geometries are ignored (programming error, logged by callers if they
  /// care). Empty operands merge as no-ops.
  void Merge(const ExpHistogram& other);

  size_t NumBuckets() const { return counts_.size(); }
  int64_t BucketCount(size_t i) const { return counts_.at(i); }
  /// Lower bound of bucket i (0 for the underflow bucket).
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;
  int64_t TotalCount() const { return total_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double base() const { return base_; }

  const RunningStats& stats() const { return stats_; }

  /// Bucket-interpolated percentile estimate in [0,100] (clamped); NaN when
  /// empty. Exact min/max come from stats().
  double Percentile(double pct) const;

  /// ASCII bar rendering of the non-empty bucket range.
  std::string ToString(size_t max_bar_width = 40) const;

 private:
  size_t BucketIndex(double x) const;

  double lo_;
  double hi_;
  double base_;
  double inv_log_base_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  RunningStats stats_;
};

/// Exact mean of a vector (0 for empty).
double Mean(const std::vector<double>& xs);

/// Percentile in [0,100] with linear interpolation (NaN for empty).
double Percentile(std::vector<double> xs, double pct);

/// Geometric mean of strictly positive values (NaN otherwise / empty).
double GeometricMean(const std::vector<double>& xs);

}  // namespace pdsp

#endif  // PDSP_COMMON_STATS_H_
