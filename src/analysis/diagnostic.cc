#include "src/analysis/diagnostic.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace pdsp {
namespace analysis {

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = StrFormat("%s [%s] %s", code.c_str(),
                              SeverityToString(severity), pass.c_str());
  if (!op_name.empty()) {
    out += " @ " + op_name;
  }
  out += ": " + message;
  if (!hint.empty()) {
    out += " (fix: " + hint + ")";
  }
  return out;
}

Json Diagnostic::ToJson() const {
  Json j = Json::Object();
  j.Set("severity", Json::Str(SeverityToString(severity)));
  j.Set("code", Json::Str(code));
  j.Set("pass", Json::Str(pass));
  j.Set("op", Json::Int(op));
  j.Set("op_name", Json::Str(op_name));
  j.Set("message", Json::Str(message));
  j.Set("hint", Json::Str(hint));
  return j;
}

void AnalysisReport::Add(Diagnostic diag) {
  diagnostics_.push_back(std::move(diag));
}

void AnalysisReport::Finalize() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.severity != b.severity) {
                       return a.severity > b.severity;
                     }
                     if (a.op != b.op) return a.op < b.op;
                     return a.code < b.code;
                   });
}

size_t AnalysisReport::CountAtLeast(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity >= severity) ++n;
  }
  return n;
}

bool AnalysisReport::HasCode(const std::string& code) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string AnalysisReport::ToString() const {
  if (diagnostics_.empty()) return "no diagnostics\n";
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.ToString();
    out += '\n';
  }
  const size_t errors = NumErrors();
  const size_t warnings = CountAtLeast(Severity::kWarning) - errors;
  const size_t infos = diagnostics_.size() - errors - warnings;
  out += StrFormat("%zu error%s, %zu warning%s, %zu info\n", errors,
                   errors == 1 ? "" : "s", warnings,
                   warnings == 1 ? "" : "s", infos);
  return out;
}

Json AnalysisReport::ToJson() const {
  Json arr = Json::Array();
  for (const Diagnostic& d : diagnostics_) arr.Append(d.ToJson());
  const size_t errors = NumErrors();
  const size_t warnings = CountAtLeast(Severity::kWarning) - errors;
  Json j = Json::Object();
  j.Set("diagnostics", std::move(arr));
  j.Set("errors", Json::Int(static_cast<int64_t>(errors)));
  j.Set("warnings", Json::Int(static_cast<int64_t>(warnings)));
  j.Set("infos", Json::Int(static_cast<int64_t>(diagnostics_.size() -
                                                errors - warnings)));
  return j;
}

Status AnalysisReport::ToStatus() const {
  if (!HasErrors()) return Status::OK();
  std::string msg = "plan analysis failed:";
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity != Severity::kError) continue;
    msg += " [" + d.code + "] ";
    if (!d.op_name.empty()) msg += d.op_name + ": ";
    msg += d.message + ";";
  }
  if (!msg.empty() && msg.back() == ';') msg.pop_back();
  return Status::FailedPrecondition(std::move(msg));
}

}  // namespace analysis
}  // namespace pdsp
