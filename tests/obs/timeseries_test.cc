#include "src/obs/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "src/common/string_util.h"

namespace pdsp {
namespace obs {
namespace {

TimeSeriesRow Row(double t, int task, double util) {
  TimeSeriesRow row;
  row.time_s = t;
  row.task = task;
  row.op = "agg";
  row.instance = task;
  row.queue_tuples = 5;
  row.utilization = util;
  row.in_rate_tps = 100.0;
  row.out_rate_tps = 90.0;
  row.watermark_lag_s = 0.25;
  row.in_flight_tuples = 42;
  row.backpressure = task == 1;
  return row;
}

TEST(TimeSeriesCsvTest, NonFiniteSamplesSerializeAsEmptyCells) {
  TimeSeries series;
  TimeSeriesRow row = Row(1.0, 0, 0.5);
  row.utilization = std::nan("");
  row.in_rate_tps = std::numeric_limits<double>::infinity();
  row.out_rate_tps = -std::numeric_limits<double>::infinity();
  row.watermark_lag_s = std::nan("");
  series.Append(row);

  const std::string csv = series.ToCsv();
  EXPECT_EQ(csv.find("nan"), std::string::npos);
  EXPECT_EQ(csv.find("inf"), std::string::npos);
  // time,task,op,instance,queue,<empty util>,<empty in>,<empty out>,<empty
  // lag>,in_flight,backpressure
  EXPECT_NE(csv.find("agg,0,5,,,,,42,0"), std::string::npos) << csv;
}

TEST(TimeSeriesCsvTest, RoundTripsThroughFromCsv) {
  TimeSeries series;
  series.Append(Row(0.5, 0, 0.25));
  series.Append(Row(0.5, 1, 0.75));
  TimeSeriesRow gap = Row(1.0, 0, 0.5);
  gap.utilization = std::nan("");
  gap.watermark_lag_s = std::numeric_limits<double>::infinity();
  series.Append(gap);

  const std::string csv = series.ToCsv();
  auto parsed = TimeSeries::FromCsv(csv);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->NumRows(), 3u);
  // Exact round trip: serialize -> parse -> serialize is a fixed point.
  EXPECT_EQ(parsed->ToCsv(), csv);

  const TimeSeriesRow& back = parsed->rows()[2];
  EXPECT_TRUE(std::isnan(back.utilization));
  EXPECT_TRUE(std::isnan(back.watermark_lag_s));  // inf became an empty cell
  EXPECT_EQ(back.op, "agg");
  EXPECT_EQ(back.in_flight_tuples, 42);
  const TimeSeriesRow& second = parsed->rows()[1];
  EXPECT_TRUE(second.backpressure);
  EXPECT_DOUBLE_EQ(second.utilization, 0.75);
}

TEST(TimeSeriesCsvTest, RejectsBadHeaderAndRaggedRows) {
  auto bad_header = TimeSeries::FromCsv("time,task\n1,2\n");
  ASSERT_FALSE(bad_header.ok());
  EXPECT_TRUE(bad_header.status().IsInvalidArgument());

  const std::string header = Join(TimeSeries::Columns(), ",");
  auto ragged = TimeSeries::FromCsv(header + "\n1.0,0,agg\n");
  ASSERT_FALSE(ragged.ok());
  EXPECT_TRUE(ragged.status().IsInvalidArgument());

  // Header-only documents are a valid empty series.
  auto empty = TimeSeries::FromCsv(header + "\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

}  // namespace
}  // namespace obs
}  // namespace pdsp
