#include "src/analysis/analyzer.h"

namespace pdsp {
namespace analysis {

obs::MetricsRegistry& AnalysisMetrics() {
  static obs::MetricsRegistry* registry = new obs::MetricsRegistry();
  return *registry;
}

const PassRegistry& DefaultPasses() {
  static const PassRegistry* registry =
      new PassRegistry(PassRegistry::Default());
  return *registry;
}

AnalysisReport AnalyzePlan(const LogicalPlan& plan,
                           const AnalyzeOptions& options) {
  // Pass objects are stateless and cheap; a per-call pipeline keeps
  // disabled_passes a pure call-local concern.
  PassRegistry registry = PassRegistry::Default();
  for (const std::string& name : options.disabled_passes) {
    (void)registry.SetEnabled(name, false);  // unknown names are ignored
  }
  const AnalysisContext ctx = AnalysisContext::Make(plan, options.cluster);
  AnalysisReport raw = registry.RunAll(ctx);

  AnalysisReport report;
  for (const Diagnostic& d : raw.diagnostics()) {
    if (d.severity >= options.min_severity) report.Add(d);
  }
  report.Finalize();

  if (options.record_metrics) {
    obs::MetricsRegistry& metrics = AnalysisMetrics();
    metrics.GetCounter("pdsp.analysis.runs")->Add(1);
    const int64_t errors = static_cast<int64_t>(report.NumErrors());
    const int64_t warnings = static_cast<int64_t>(
        report.CountAtLeast(Severity::kWarning)) - errors;
    const int64_t infos =
        static_cast<int64_t>(report.diagnostics().size()) - errors - warnings;
    if (errors > 0) metrics.GetCounter("pdsp.analysis.errors")->Add(errors);
    if (warnings > 0) {
      metrics.GetCounter("pdsp.analysis.warnings")->Add(warnings);
    }
    if (infos > 0) metrics.GetCounter("pdsp.analysis.infos")->Add(infos);
  }
  return report;
}

Status CheckPlan(const LogicalPlan& plan, const Cluster* cluster) {
  AnalyzeOptions options;
  options.cluster = cluster;
  options.min_severity = Severity::kError;
  return AnalyzePlan(plan, options).ToStatus();
}

}  // namespace analysis
}  // namespace pdsp
