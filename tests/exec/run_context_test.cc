#include "src/exec/run_context.h"

#include <gtest/gtest.h>

#include <set>

#include "src/obs/host_profile.h"

namespace pdsp {
namespace exec {
namespace {

TEST(RunContextTest, DefaultContextOwnsPrivateProfiler) {
  RunContext context;
  EXPECT_TRUE(context.owns_profiler());
  ASSERT_NE(context.profiler(), nullptr);
  EXPECT_NE(context.profiler(), &obs::HostProfiler::Global());
}

TEST(RunContextTest, ExternalSinkIsUsedVerbatim) {
  obs::HostProfiler sink;
  RunContext context(&sink);
  EXPECT_FALSE(context.owns_profiler());
  EXPECT_EQ(context.profiler(), &sink);
}

TEST(RunContextTest, NullSinkFallsBackToOwnedProfiler) {
  RunContext context(nullptr);
  EXPECT_TRUE(context.owns_profiler());
  ASSERT_NE(context.profiler(), nullptr);
}

TEST(RunContextTest, PhasesLandInTheBoundSink) {
  obs::HostProfiler sink;
  RunContext context(&sink);
  {
    obs::HostProfiler::Phase phase(context.profiler(), "unit-phase");
  }
  const obs::HostProfile profile = sink.Snapshot();
  ASSERT_EQ(profile.phases.count("unit-phase"), 1u);
  EXPECT_EQ(profile.phases.at("unit-phase").count, 1);
}

TEST(RunContextTest, SeedForRepeatIsPureFunctionOfBaseAndIndex) {
  RunContext context;
  context.set_base_seed(100);
  EXPECT_EQ(context.base_seed(), 100u);
  EXPECT_EQ(context.SeedForRepeat(0), 100u);
  EXPECT_EQ(context.SeedForRepeat(1), 100u + 7919u);
  EXPECT_EQ(context.SeedForRepeat(3), 100u + 3u * 7919u);

  RunContext other;
  other.set_base_seed(100);
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(context.SeedForRepeat(r), other.SeedForRepeat(r));
  }
}

TEST(RunContextTest, MixSeedIsDeterministicAndSpread) {
  EXPECT_EQ(RunContext::MixSeed(42, 7), RunContext::MixSeed(42, 7));
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 64; ++i) {
    seeds.insert(RunContext::MixSeed(2024, i));
  }
  EXPECT_EQ(seeds.size(), 64u);  // no collisions over a small fan-out
  EXPECT_NE(RunContext::MixSeed(1, 0), RunContext::MixSeed(2, 0));
}

TEST(RunContextTest, MetricsAndTracerArePerContext) {
  RunContext a;
  RunContext b;
  ASSERT_NE(a.metrics(), nullptr);
  ASSERT_NE(b.metrics(), nullptr);
  EXPECT_NE(a.metrics().get(), b.metrics().get());
  EXPECT_NE(a.tracer(), b.tracer());
  a.metrics()->GetCounter("x")->Add(3);
  EXPECT_EQ(a.metrics()->CounterValue("x"), 3);
  EXPECT_EQ(b.metrics()->CounterValue("x"), 0);
}

}  // namespace
}  // namespace exec
}  // namespace pdsp
