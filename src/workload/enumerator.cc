#include "src/workload/enumerator.h"

#include <algorithm>
#include <cmath>

#include "src/query/cardinality.h"

namespace pdsp {

const char* EnumerationStrategyToString(EnumerationStrategy strategy) {
  switch (strategy) {
    case EnumerationStrategy::kRandom:
      return "random";
    case EnumerationStrategy::kRuleBased:
      return "rule_based";
    case EnumerationStrategy::kExhaustive:
      return "exhaustive";
    case EnumerationStrategy::kMinAvgMax:
      return "min_avg_max";
    case EnumerationStrategy::kIncreasing:
      return "increasing";
    case EnumerationStrategy::kParameterBased:
      return "parameter_based";
  }
  return "?";
}

namespace {

bool IsSink(const LogicalPlan& plan, size_t op) {
  return plan.op(static_cast<LogicalPlan::OpId>(op)).type ==
         OperatorType::kSink;
}

// Power-of-two ladder {1, 2, 4, ...} within [min_degree, max_degree].
std::vector<int> DegreeLadder(const EnumerationOptions& options) {
  std::vector<int> ladder;
  for (int d = std::max(1, options.min_degree); d <= options.max_degree;
       d *= 2) {
    ladder.push_back(d);
  }
  if (ladder.empty()) ladder.push_back(std::max(1, options.min_degree));
  if (ladder.back() != options.max_degree &&
      options.max_degree > ladder.back()) {
    ladder.push_back(options.max_degree);
  }
  return ladder;
}

// DS2-style rule: degree = input work per second / (capacity * target util).
Result<ParallelismAssignment> RuleBasedDegrees(
    const LogicalPlan& plan, const EnumerationOptions& options) {
  PDSP_ASSIGN_OR_RETURN(auto cards, CardinalityModel::Compute(plan));
  ParallelismAssignment degrees(plan.NumOperators(), 1);
  for (size_t op = 0; op < plan.NumOperators(); ++op) {
    const auto id = static_cast<LogicalPlan::OpId>(op);
    const OperatorDescriptor& desc = plan.op(id);
    if (desc.type == OperatorType::kSink) {
      degrees[op] = 1;
      continue;
    }
    const double rate = desc.type == OperatorType::kSource
                            ? cards[op].output_rate
                            : cards[op].input_rate;
    const double per_tuple = options.costs.InputTupleCost(desc) +
                             cards[op].selectivity *
                                 options.costs.OutputTupleCost(desc, false);
    const double work_per_sec = rate * per_tuple;
    const int needed = static_cast<int>(
        std::ceil(work_per_sec / std::max(1e-9,
                                          options.target_utilization)));
    degrees[op] = std::clamp(std::max(1, needed), options.min_degree,
                             options.max_degree);
  }
  return degrees;
}

}  // namespace

Result<std::vector<ParallelismAssignment>> EnumerateParallelism(
    const LogicalPlan& plan, EnumerationStrategy strategy,
    const EnumerationOptions& options, Rng* rng) {
  if (!plan.validated()) {
    return Status::FailedPrecondition("plan must be validated");
  }
  if (options.min_degree < 1 || options.max_degree < options.min_degree) {
    return Status::InvalidArgument("bad degree bounds");
  }
  const size_t n = plan.NumOperators();
  std::vector<ParallelismAssignment> out;

  switch (strategy) {
    case EnumerationStrategy::kRandom: {
      for (int a = 0; a < options.num_assignments; ++a) {
        ParallelismAssignment degrees(n, 1);
        for (size_t op = 0; op < n; ++op) {
          degrees[op] = IsSink(plan, op)
                            ? 1
                            : static_cast<int>(rng->UniformInt(
                                  options.min_degree, options.max_degree));
        }
        out.push_back(std::move(degrees));
      }
      break;
    }
    case EnumerationStrategy::kRuleBased: {
      PDSP_ASSIGN_OR_RETURN(auto base, RuleBasedDegrees(plan, options));
      out.push_back(base);
      // Explore around the computed degrees (Section 3.1: "exploring around
      // selected parallelism degrees").
      for (int a = 1; a < options.num_assignments; ++a) {
        ParallelismAssignment variant = base;
        for (size_t op = 0; op < n; ++op) {
          if (IsSink(plan, op)) continue;
          const int jitter = static_cast<int>(rng->UniformInt(
              -options.rule_jitter, options.rule_jitter));
          variant[op] = std::clamp(base[op] + jitter, options.min_degree,
                                   options.max_degree);
        }
        out.push_back(std::move(variant));
      }
      break;
    }
    case EnumerationStrategy::kExhaustive: {
      const std::vector<int> ladder = DegreeLadder(options);
      // Odometer over non-sink operators.
      std::vector<size_t> idx(n, 0);
      for (;;) {
        ParallelismAssignment degrees(n, 1);
        for (size_t op = 0; op < n; ++op) {
          degrees[op] = IsSink(plan, op) ? 1 : ladder[idx[op]];
        }
        out.push_back(std::move(degrees));
        if (static_cast<int>(out.size()) >= options.exhaustive_limit) break;
        // Increment odometer.
        size_t pos = 0;
        while (pos < n) {
          if (IsSink(plan, pos)) {
            ++pos;
            continue;
          }
          if (++idx[pos] < ladder.size()) break;
          idx[pos] = 0;
          ++pos;
        }
        if (pos >= n) break;  // full cycle
      }
      break;
    }
    case EnumerationStrategy::kMinAvgMax: {
      const int avg = (options.min_degree + options.max_degree) / 2;
      for (int d : {options.min_degree, std::max(1, avg),
                    options.max_degree}) {
        ParallelismAssignment degrees(n, 1);
        for (size_t op = 0; op < n; ++op) {
          degrees[op] = IsSink(plan, op) ? 1 : d;
        }
        out.push_back(std::move(degrees));
      }
      break;
    }
    case EnumerationStrategy::kIncreasing: {
      for (int d : DegreeLadder(options)) {
        ParallelismAssignment degrees(n, 1);
        for (size_t op = 0; op < n; ++op) {
          degrees[op] = IsSink(plan, op) ? 1 : d;
        }
        out.push_back(std::move(degrees));
      }
      break;
    }
    case EnumerationStrategy::kParameterBased: {
      if (options.parameter_degrees.empty()) {
        return Status::InvalidArgument(
            "parameter_based needs parameter_degrees");
      }
      ParallelismAssignment degrees(n, 1);
      if (options.parameter_degrees.size() == 1) {
        for (size_t op = 0; op < n; ++op) {
          degrees[op] =
              IsSink(plan, op) ? 1 : options.parameter_degrees[0];
        }
      } else if (options.parameter_degrees.size() == n) {
        degrees = options.parameter_degrees;
      } else {
        return Status::InvalidArgument(
            "parameter_degrees must have 1 entry or one per operator");
      }
      for (int d : degrees) {
        if (d < 1) return Status::InvalidArgument("degree < 1");
      }
      out.push_back(std::move(degrees));
      break;
    }
  }
  return out;
}

Status ApplyParallelism(LogicalPlan* plan,
                        const ParallelismAssignment& degrees) {
  if (degrees.size() != plan->NumOperators()) {
    return Status::InvalidArgument("assignment size mismatch");
  }
  for (size_t op = 0; op < degrees.size(); ++op) {
    if (degrees[op] < 1) return Status::InvalidArgument("degree < 1");
    plan->mutable_op(static_cast<LogicalPlan::OpId>(op))->parallelism =
        degrees[op];
  }
  return plan->Validate();
}

Status ApplyUniformParallelism(LogicalPlan* plan, int degree) {
  if (degree < 1) return Status::InvalidArgument("degree < 1");
  for (size_t op = 0; op < plan->NumOperators(); ++op) {
    const auto id = static_cast<LogicalPlan::OpId>(op);
    plan->mutable_op(id)->parallelism =
        plan->op(id).type == OperatorType::kSink ? 1 : degree;
  }
  return plan->Validate();
}

}  // namespace pdsp
