// Shared helpers for building small plans and streams in tests.

#ifndef PDSP_TESTS_TESTING_TEST_PLANS_H_
#define PDSP_TESTS_TESTING_TEST_PLANS_H_

#include <string>

#include "src/query/builder.h"
#include "src/query/plan.h"

namespace pdsp {
namespace testing {

/// Stream with fields (key:int zipf(card), val:double uniform[0,100)).
inline StreamSpec KeyValueStream(int64_t key_cardinality = 100,
                                 double zipf_s = 0.8) {
  StreamSpec spec;
  Field key{"key", DataType::kInt};
  Field val{"val", DataType::kDouble};
  (void)spec.schema.AddField(key);
  (void)spec.schema.AddField(val);
  FieldGeneratorSpec key_gen;
  key_gen.dist = FieldDistribution::kZipfKey;
  key_gen.cardinality = key_cardinality;
  key_gen.zipf_s = zipf_s;
  FieldGeneratorSpec val_gen;
  val_gen.dist = FieldDistribution::kUniformDouble;
  val_gen.min = 0.0;
  val_gen.max = 100.0;
  spec.specs = {key_gen, val_gen};
  return spec;
}

inline ArrivalProcess::Options PoissonArrival(double rate) {
  ArrivalProcess::Options opt;
  opt.kind = ArrivalKind::kPoisson;
  opt.rate = rate;
  return opt;
}

/// source -> filter(val > 50) -> window_agg(sum val by key) -> sink.
inline Result<LogicalPlan> LinearPlan(double rate = 1000.0,
                                      int parallelism = 2) {
  PlanBuilder b;
  auto src = b.Source("src", KeyValueStream(), PoissonArrival(rate),
                      parallelism);
  auto f = b.Filter("filter", src, 1, FilterOp::kGt, Value(50.0), parallelism);
  WindowSpec win;
  win.type = WindowType::kTumbling;
  win.policy = WindowPolicy::kTime;
  win.duration_ms = 1000.0;
  auto agg = b.WindowAggregate("agg", f, win, AggregateFn::kSum, 1, 0,
                               parallelism);
  b.Sink("sink", agg);
  return b.Build();
}

/// Two sources joined on key within a 1s tumbling window.
inline Result<LogicalPlan> TwoWayJoinPlan(double rate = 1000.0,
                                          int parallelism = 2) {
  PlanBuilder b;
  auto s1 = b.Source("src1", KeyValueStream(), PoissonArrival(rate),
                     parallelism);
  auto s2 = b.Source("src2", KeyValueStream(), PoissonArrival(rate),
                     parallelism);
  auto f1 = b.Filter("f1", s1, 1, FilterOp::kGt, Value(25.0), parallelism);
  auto f2 = b.Filter("f2", s2, 1, FilterOp::kLt, Value(75.0), parallelism);
  WindowSpec win;
  win.duration_ms = 1000.0;
  auto j = b.WindowJoin("join", f1, f2, 0, 0, win, parallelism);
  b.Sink("sink", j);
  return b.Build();
}

}  // namespace testing
}  // namespace pdsp

#endif  // PDSP_TESTS_TESTING_TEST_PLANS_H_
