#include "src/obs/host_profile.h"

#include <gtest/gtest.h>

#include <string>

namespace pdsp {
namespace obs {
namespace {

TEST(HostProfilerTest, PhasesAccumulateCountTotalAndMax) {
  HostProfiler profiler;
  profiler.RecordPhase("simulate", 0.25);
  profiler.RecordPhase("simulate", 0.75);
  profiler.RecordPhase("train", 0.10);
  const HostProfile profile = profiler.Snapshot();
  ASSERT_EQ(profile.phases.count("simulate"), 1u);
  const HostPhaseStats& sim = profile.phases.at("simulate");
  EXPECT_EQ(sim.count, 2);
  EXPECT_DOUBLE_EQ(sim.total_s, 1.0);
  EXPECT_DOUBLE_EQ(sim.max_s, 0.75);
  EXPECT_EQ(profile.phases.at("train").count, 1);
}

TEST(HostProfilerTest, PhaseScopeRecordsOnceEvenWithExplicitEnd) {
  HostProfiler profiler;
  {
    HostProfiler::Phase phase(&profiler, "export");
    phase.End();
    // The destructor must not double-count after End().
  }
  EXPECT_EQ(profiler.Snapshot().phases.at("export").count, 1);
}

TEST(HostProfilerTest, DisabledAndNullProfilersRecordNothing) {
  HostProfiler profiler;
  profiler.set_enabled(false);
  { HostProfiler::Phase phase(&profiler, "simulate"); }
  { HostProfiler::Phase phase(nullptr, "simulate"); }
  EXPECT_TRUE(profiler.Snapshot().phases.empty());
}

TEST(HostProfilerTest, UsageSamplesAreSane) {
  HostProfiler profiler;
  const HostUsage usage = profiler.SampleUsage();
  EXPECT_GE(usage.wall_s, 0.0);
  EXPECT_GE(usage.cpu_user_s, 0.0);
  EXPECT_GE(usage.cpu_sys_s, 0.0);
#ifdef __linux__
  // A running test binary certainly has resident memory.
  EXPECT_GT(usage.rss_kb, 0);
  EXPECT_GE(usage.peak_rss_kb, usage.rss_kb);
#endif
}

TEST(HostProfilerTest, ResetClearsPhases) {
  HostProfiler profiler;
  profiler.RecordPhase("simulate", 1.0);
  profiler.Reset();
  EXPECT_TRUE(profiler.Snapshot().phases.empty());
}

TEST(HostProfilerTest, ExportToSetsHostGauges) {
  HostProfiler profiler;
  profiler.RecordPhase("simulate", 2.0);
  MetricsRegistry registry;
  profiler.ExportTo(&registry);
  EXPECT_GT(registry.GaugeValue("pdsp.host.peak_rss_kb"), 0.0);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("pdsp.host.phase.simulate.total_s"),
                   2.0);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("pdsp.host.phase.simulate.count"),
                   1.0);
}

TEST(HostProfilerTest, WorkerPhasesStaySeparateFromWallClockPhases) {
  HostProfiler worker_a;
  worker_a.RecordPhase("simulate", 1.0);
  worker_a.RecordPhase("simulate", 0.5);
  HostProfiler worker_b;
  worker_b.RecordPhase("simulate", 2.0);
  worker_b.RecordPhase("export", 0.25);

  HostProfiler merger;
  merger.MergeWorkerPhases("sweep:worker0", worker_a.Snapshot().phases);
  merger.MergeWorkerPhases("sweep:worker1", worker_b.Snapshot().phases);

  const HostProfile profile = merger.Snapshot();
  // Concurrent busy-seconds must not masquerade as wall-clock phases.
  EXPECT_TRUE(profile.phases.empty());
  ASSERT_EQ(profile.worker_phases.size(), 2u);
  EXPECT_DOUBLE_EQ(
      profile.worker_phases.at("sweep:worker0").at("simulate").total_s, 1.5);

  const WorkerPhaseMap aggregate = profile.AggregateWorkerPhases();
  ASSERT_EQ(aggregate.count("simulate"), 1u);
  EXPECT_DOUBLE_EQ(aggregate.at("simulate").total_s, 3.5);
  EXPECT_EQ(aggregate.at("simulate").count, 3);
  EXPECT_DOUBLE_EQ(aggregate.at("simulate").max_s, 2.0);
  EXPECT_DOUBLE_EQ(aggregate.at("export").total_s, 0.25);
}

TEST(HostProfilerTest, WorkerPhasesExportAndSerialize) {
  HostProfiler worker;
  worker.RecordPhase("simulate", 1.0);
  HostProfiler merger;
  merger.MergeWorkerPhases("w0", worker.Snapshot().phases);

  MetricsRegistry registry;
  merger.ExportTo(&registry);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("pdsp.host.workers"), 1.0);
  EXPECT_DOUBLE_EQ(
      registry.GaugeValue("pdsp.host.worker_phase.simulate.total_s"), 1.0);

  const Json json = merger.Snapshot().ToJson();
  EXPECT_DOUBLE_EQ(
      json["workers"]["w0"]["simulate"]["total_s"].AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(
      json["worker_aggregate"]["simulate"]["total_s"].AsNumber(), 1.0);
}

TEST(HostProfileTest, ToJsonCarriesUsageAndPhases) {
  HostProfiler profiler;
  profiler.RecordPhase("build-plan", 0.5);
  const Json json = profiler.Snapshot().ToJson();
  ASSERT_TRUE(json.is_object());
  EXPECT_TRUE(json["usage"].is_object());
  EXPECT_DOUBLE_EQ(json["phases"]["build-plan"]["total_s"].AsNumber(), 0.5);
}

}  // namespace
}  // namespace obs
}  // namespace pdsp
