#include "src/analysis/analyzer.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/query/builder.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace analysis {
namespace {

using pdsp::testing::KeyValueStream;
using pdsp::testing::LinearPlan;
using pdsp::testing::PoissonArrival;

AnalyzeOptions Quiet() {
  AnalyzeOptions options;
  options.record_metrics = false;
  return options;
}

// src -> sliding agg with slide == size: exactly one warning (PDSP-W205),
// stable across runs — the golden-output fixture.
LogicalPlan DegenerateSlidePlan() {
  PlanBuilder b;
  auto src = b.Source("src", KeyValueStream(), PoissonArrival(100.0));
  WindowSpec w;
  w.type = WindowType::kSliding;
  w.slide_ratio = 1.0;
  auto agg = b.WindowAggregate("agg", src, w, AggregateFn::kSum, 1, 0);
  b.Sink("sink", agg);
  b.SkipAnalysis();
  auto plan = b.Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *std::move(plan);
}

TEST(AnalyzerTest, CleanPlanYieldsNoDiagnostics) {
  PlanBuilder b;
  auto src = b.Source("src", KeyValueStream(), PoissonArrival(100.0));
  b.Sink("sink", src);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.empty()) << report.ToString();
  EXPECT_TRUE(CheckPlan(*plan).ok());
}

TEST(AnalyzerTest, GoldenReportText) {
  const AnalysisReport report = AnalyzePlan(DegenerateSlidePlan(), Quiet());
  EXPECT_EQ(report.ToString(),
            "PDSP-W205 [warn] window-legality @ agg: sliding window with "
            "slide == size behaves like a tumbling window (fix: declare the "
            "window tumbling to avoid sliding-path overhead)\n"
            "0 errors, 1 warning, 0 info\n");
}

TEST(AnalyzerTest, MinSeverityFiltersWarnings) {
  AnalyzeOptions options = Quiet();
  options.min_severity = Severity::kError;
  const AnalysisReport report = AnalyzePlan(DegenerateSlidePlan(), options);
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(AnalyzerTest, DisabledPassIsSkipped) {
  AnalyzeOptions options = Quiet();
  options.disabled_passes = {"window-legality"};
  const AnalysisReport report = AnalyzePlan(DegenerateSlidePlan(), options);
  EXPECT_FALSE(report.HasCode("PDSP-W205")) << report.ToString();
}

TEST(AnalyzerTest, UnknownDisabledPassIsIgnored) {
  AnalyzeOptions options = Quiet();
  options.disabled_passes = {"no-such-pass"};
  const AnalysisReport report = AnalyzePlan(DegenerateSlidePlan(), options);
  EXPECT_TRUE(report.HasCode("PDSP-W205")) << report.ToString();
}

TEST(AnalyzerTest, MetricsCountRunsAndFindings) {
  obs::MetricsRegistry& metrics = AnalysisMetrics();
  const int64_t runs0 = metrics.CounterValue("pdsp.analysis.runs");
  const int64_t warns0 = metrics.CounterValue("pdsp.analysis.warnings");
  (void)AnalyzePlan(DegenerateSlidePlan());  // metrics on by default
  EXPECT_EQ(metrics.CounterValue("pdsp.analysis.runs"), runs0 + 1);
  EXPECT_EQ(metrics.CounterValue("pdsp.analysis.warnings"), warns0 + 1);
}

TEST(AnalyzerTest, RecordMetricsFalseLeavesCountersAlone) {
  obs::MetricsRegistry& metrics = AnalysisMetrics();
  const int64_t runs0 = metrics.CounterValue("pdsp.analysis.runs");
  (void)AnalyzePlan(DegenerateSlidePlan(), Quiet());
  EXPECT_EQ(metrics.CounterValue("pdsp.analysis.runs"), runs0);
}

TEST(AnalyzerTest, DefaultPassesListsAllFourteen) {
  const PassRegistry& registry = DefaultPasses();
  EXPECT_EQ(registry.NumPasses(), 14u);
  for (const char* name :
       {"dead-operator", "window-legality", "join-key-types", "field-refs",
        "filter-literal", "selectivity-range", "repartition", "udo-checks",
        "parallelism-feasibility", "sink-io", "dataflow-partitioning",
        "rate-interval", "const-refinement", "determinism"}) {
    EXPECT_TRUE(registry.Has(name)) << name;
    const AnalysisPass* pass = registry.Find(name);
    ASSERT_NE(pass, nullptr) << name;
    EXPECT_STRNE(pass->description(), "") << name;
  }
}

class StubPass : public AnalysisPass {
 public:
  const char* name() const override { return "stub-pass"; }
  const char* description() const override { return "does nothing"; }
  void Run(const AnalysisContext&, std::vector<Diagnostic>*) const override {}
};

TEST(PassRegistryTest, DuplicateRegistrationRejected) {
  PassRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_unique<StubPass>()).ok());
  EXPECT_FALSE(registry.Register(std::make_unique<StubPass>()).ok());
  EXPECT_EQ(registry.NumPasses(), 1u);
}

TEST(PassRegistryTest, EnableDisableRoundTrip) {
  PassRegistry registry = PassRegistry::Default();
  auto names = registry.Names();
  ASSERT_FALSE(names.empty());
  EXPECT_TRUE(registry.Has(names[0]));
  EXPECT_TRUE(registry.SetEnabled(names[0], false).ok());
  EXPECT_FALSE(registry.IsEnabled(names[0]));
  EXPECT_TRUE(registry.SetEnabled(names[0], true).ok());
  EXPECT_TRUE(registry.IsEnabled(names[0]));
}

TEST(PassRegistryTest, SetEnabledUnknownPassIsNotFound) {
  PassRegistry registry = PassRegistry::Default();
  EXPECT_TRUE(registry.SetEnabled("no-such-pass", false).IsNotFound());
  EXPECT_FALSE(registry.Has("no-such-pass"));
  EXPECT_EQ(registry.Find("no-such-pass"), nullptr);
}

TEST(PassRegistryTest, DisabledPassSkippedByRunAll) {
  const LogicalPlan plan = DegenerateSlidePlan();
  PassRegistry registry = PassRegistry::Default();
  ASSERT_TRUE(registry.SetEnabled("window-legality", false).ok());
  const AnalysisContext ctx = AnalysisContext::Make(plan);
  const AnalysisReport report = registry.RunAll(ctx);
  EXPECT_FALSE(report.HasCode("PDSP-W205")) << report.ToString();
}

TEST(AnalysisContextTest, BrokenPlanStillBuildsContext) {
  LogicalPlan plan;  // cyclic, no sink, no sources
  OperatorDescriptor a;
  a.type = OperatorType::kMap;
  a.name = "a";
  OperatorDescriptor c;
  c.type = OperatorType::kMap;
  c.name = "c";
  auto ia = plan.AddOperator(a);
  auto ic = plan.AddOperator(c);
  ASSERT_TRUE(ia.ok() && ic.ok());
  ASSERT_TRUE(plan.Connect(*ia, *ic).ok());
  ASSERT_TRUE(plan.Connect(*ic, *ia).ok());
  const AnalysisContext ctx = AnalysisContext::Make(plan);
  EXPECT_FALSE(ctx.acyclic);
  EXPECT_TRUE(ctx.topo.empty());
  EXPECT_FALSE(ctx.SchemaKnown(*ia));
  EXPECT_FALSE(ctx.SchemaKnown(*ic));
  // And the analyzer still produces a structured report, not a crash.
  const AnalysisReport report = AnalyzePlan(plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E101")) << report.ToString();
}

TEST(PlanBuilderGateTest, BuildRejectsErrorCarryingPlan) {
  PlanBuilder b;
  auto src = b.Source("src", KeyValueStream(), PoissonArrival(100.0));
  WindowSpec w;
  w.type = WindowType::kSliding;
  w.slide_ratio = 2.0;  // slide > size: PDSP-E203
  auto agg = b.WindowAggregate("agg", src, w, AggregateFn::kSum, 1, 0);
  b.Sink("sink", agg);
  auto plan = b.Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsFailedPrecondition())
      << plan.status().ToString();
  EXPECT_NE(plan.status().message().find("PDSP-E203"), std::string::npos)
      << plan.status().ToString();
}

TEST(PlanBuilderGateTest, SkipAnalysisBypassesGateButNotValidation) {
  PlanBuilder b;
  auto src = b.Source("src", KeyValueStream(), PoissonArrival(100.0));
  WindowSpec w;
  w.type = WindowType::kSliding;
  w.slide_ratio = 2.0;
  auto agg = b.WindowAggregate("agg", src, w, AggregateFn::kSum, 1, 0);
  b.Sink("sink", agg);
  b.SkipAnalysis();
  auto plan = b.Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();

  PlanBuilder broken;
  auto s2 = broken.Source("src", KeyValueStream(), PoissonArrival(100.0));
  broken.Map("m", s2);  // dangling: structural validation still applies
  broken.SkipAnalysis();
  EXPECT_FALSE(broken.Build().ok());
}

}  // namespace
}  // namespace analysis
}  // namespace pdsp
