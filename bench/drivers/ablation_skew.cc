// Ablation: key-skew sensitivity. The paper models data as Poisson but
// notes PDSP-Bench also supports Zipf-distributed data; this ablation shows
// why it matters: under hash partitioning, skewed keys concentrate load on
// few instances of a keyed operator, so the hottest instance saturates long
// before mean utilization does — and the watermark holds every window back
// to the straggler's pace.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/common/string_util.h"
#include "src/obs/artifacts.h"
#include "src/query/builder.h"

namespace pdsp {

int Main() {
  const Cluster cluster = Cluster::M510(10);
  const RunProtocol protocol = bench::FigureProtocol();
  const double rate = bench::FastMode() ? 40000.0 : 120000.0;

  TableReporter table(
      StrFormat("Ablation: Zipf key skew vs keyed-aggregation latency "
                "(p=8, %.0fk ev/s)",
                rate / 1000.0),
      {"zipf_s", "p50(ms)", "hottest-instance util", "mean util"});

  for (double skew : {0.0, 0.4, 0.8, 1.2, 1.6}) {
    StreamSpec stream;
    (void)stream.schema.AddField({"key", DataType::kInt});
    (void)stream.schema.AddField({"val", DataType::kDouble});
    FieldGeneratorSpec key;
    key.dist = FieldDistribution::kZipfKey;
    key.cardinality = 1000;
    key.zipf_s = skew;
    FieldGeneratorSpec val;
    val.dist = FieldDistribution::kUniformDouble;
    val.max = 100.0;
    stream.specs = {key, val};
    ArrivalProcess::Options arrival;
    arrival.rate = rate;

    PlanBuilder b;
    auto src = b.Source("src", stream, arrival, 8);
    WindowSpec win;
    win.duration_ms = 1000.0;
    auto agg = b.WindowAggregate("agg", src, win, AggregateFn::kSum, 1, 0, 8);
    b.Sink("sink", agg);
    auto plan = b.Build();
    if (!plan.ok()) return 1;

    ExecutionOptions exec;
    exec.sim.duration_s = protocol.duration_s;
    exec.sim.warmup_s = protocol.warmup_s;
    exec.sim.seed = protocol.seed;
    // Per-cell artifact bundle: the time-series makes the skew-induced
    // imbalance directly visible (hot instance queue depth / utilization).
    obs::Tracer tracer;
    exec.sim.tracer = &tracer;
    auto r = ExecutePlan(*plan, cluster, exec);
    if (!r.ok()) {
      table.AddRow({StrFormat("%.1f", skew), "n/a", "n/a", "n/a"});
      continue;
    }
    obs::ArtifactOptions artifacts;
    artifacts.tracer = &tracer;
    artifacts.sim_options = &exec.sim;
    const obs::HostProfile host_profile =
        obs::HostProfiler::Global().Snapshot();
    artifacts.host_profile = &host_profile;
    Status obs_st = obs::WriteRunArtifacts(
        StrFormat("results/ablation_skew/zipf_%.1f", skew), *r, artifacts);
    if (!obs_st.ok()) {
      std::fprintf(stderr, "obs: %s\n", obs_st.ToString().c_str());
    }
    auto agg_id = plan->FindOperator("agg");
    const OperatorRunStats& stats = r->op_stats[*agg_id];
    table.AddRow({StrFormat("%.1f", skew),
                  LatencyCell(r->median_latency_s),
                  StrFormat("%.2f", stats.max_instance_util),
                  StrFormat("%.2f", stats.utilization)});
  }
  table.Print();
  (void)table.WriteCsv("results/ablation_skew.csv");
  return 0;
}

}  // namespace pdsp

int main() { return pdsp::Main(); }
