#include "src/obs/trace.h"

#include "src/common/file_util.h"

namespace pdsp {
namespace obs {

namespace {

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Tracer::Push(TraceEvent event) {
  MutexLock lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::AddComplete(std::string name, std::string category, double ts_us,
                         double dur_us, int pid, int tid,
                         std::vector<TraceEvent::Arg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  Push(std::move(e));
}

void Tracer::AddInstant(std::string name, std::string category, double ts_us,
                        int pid, int tid) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'i';
  e.ts_us = ts_us;
  e.pid = pid;
  e.tid = tid;
  Push(std::move(e));
}

void Tracer::AddCounter(std::string name, double ts_us, double value,
                        int pid) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = "counter";
  e.phase = 'C';
  e.ts_us = ts_us;
  e.pid = pid;
  e.args.push_back({"value", "", value, true});
  Push(std::move(e));
}

void Tracer::SetThreadName(int pid, int tid, std::string name) {
  TraceEvent e;
  e.name = "thread_name";
  e.category = "__metadata";
  e.phase = 'M';
  e.pid = pid;
  e.tid = tid;
  e.args.push_back({"name", std::move(name), 0.0, false});
  Push(std::move(e));
}

size_t Tracer::NumEvents() const {
  MutexLock lock(mu_);
  return events_.size();
}

int64_t Tracer::DroppedEvents() const {
  MutexLock lock(mu_);
  return dropped_;
}

Json Tracer::ToJson() const {
  MutexLock lock(mu_);
  Json events = Json::Array();
  for (const TraceEvent& e : events_) {
    Json doc = Json::Object();
    doc.Set("name", Json::Str(e.name));
    doc.Set("cat", Json::Str(e.category));
    doc.Set("ph", Json::Str(std::string(1, e.phase)));
    doc.Set("pid", Json::Int(e.pid));
    doc.Set("tid", Json::Int(e.tid));
    if (e.phase != 'M') doc.Set("ts", Json::Number(e.ts_us));
    if (e.phase == 'X') doc.Set("dur", Json::Number(e.dur_us));
    if (!e.args.empty()) {
      Json args = Json::Object();
      for (const TraceEvent::Arg& a : e.args) {
        args.Set(a.key, a.numeric ? Json::Number(a.num) : Json::Str(a.str));
      }
      doc.Set("args", std::move(args));
    }
    events.Append(std::move(doc));
  }
  Json root = Json::Object();
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", Json::Str("ms"));
  if (dropped_ > 0) root.Set("droppedEvents", Json::Int(dropped_));
  return root;
}

Status Tracer::WriteFile(const std::string& path) const {
  return WriteTextFileAtomic(path, ToJson().Dump() + "\n");
}

Span::Span(Tracer* tracer, std::string name, std::string category, int tid)
    : tracer_(tracer),
      name_(std::move(name)),
      category_(std::move(category)),
      tid_(tid),
      start_(std::chrono::steady_clock::now()),
      ended_(tracer == nullptr) {}

void Span::End() {
  if (ended_) return;
  ended_ = true;
  const double start_us =
      std::chrono::duration<double, std::micro>(start_.time_since_epoch())
          .count();
  tracer_->AddComplete(std::move(name_), std::move(category_), start_us,
                       NowMicros() - start_us, kWallPid, tid_);
}

}  // namespace obs
}  // namespace pdsp
