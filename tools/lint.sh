#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over the first-party sources using
# the compile database exported by CMake.
#
# Usage: tools/lint.sh [build-dir] [-- extra clang-tidy args]
#   build-dir defaults to ./build. If the directory has no
#   compile_commands.json, configure first:  cmake -B build -S .
#
# Exits 0 when clang-tidy is unavailable (the container ships only gcc);
# CI treats that as a skip, not a pass.

set -u

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true
if [ "${1:-}" = "--" ]; then shift; fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "lint.sh: $TIDY not found; skipping lint (install clang-tidy to enable)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "lint.sh: $BUILD_DIR/compile_commands.json missing; run: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

# First-party translation units only; tests are linted too but gtest macro
# expansions stay out via HeaderFilterRegex.
FILES=$(git ls-files 'src/*.cc' 'tools/*.cc' 'bench/*.cc' 'examples/*.cc')
if [ -z "$FILES" ]; then
  echo "lint.sh: no sources found" >&2
  exit 2
fi

STATUS=0
# shellcheck disable=SC2086
"$TIDY" -p "$BUILD_DIR" --quiet "$@" $FILES || STATUS=$?

if [ "$STATUS" -ne 0 ]; then
  # bugprone-*/performance-* findings are promoted to errors by the
  # WarningsAsErrors line in .clang-tidy, which is what makes clang-tidy
  # (and therefore this script, and the CI gate) exit non-zero on them.
  echo "lint.sh: clang-tidy reported findings (exit $STATUS)" >&2
fi
exit "$STATUS"
