#include "src/runtime/physical_plan.h"

#include <gtest/gtest.h>

#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

TEST(PhysicalPlanTest, RequiresValidatedLogical) {
  LogicalPlan raw;
  EXPECT_TRUE(PhysicalPlan::FromLogical(&raw).status().IsFailedPrecondition());
  EXPECT_TRUE(PhysicalPlan::FromLogical(nullptr).status().IsInvalidArgument());
}

TEST(PhysicalPlanTest, TaskCountMatchesTotalParallelism) {
  auto plan = testing::LinearPlan(1000.0, 3);
  ASSERT_TRUE(plan.ok());
  auto phys = PhysicalPlan::FromLogical(&*plan);
  ASSERT_TRUE(phys.ok());
  EXPECT_EQ(phys->NumTasks(),
            static_cast<size_t>(plan->TotalParallelism()));
}

TEST(PhysicalPlanTest, TaskIdsAreDenseAndOperatorMajor) {
  auto plan = testing::LinearPlan(1000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto phys = PhysicalPlan::FromLogical(&*plan);
  ASSERT_TRUE(phys.ok());
  for (size_t i = 0; i < phys->NumTasks(); ++i) {
    EXPECT_EQ(phys->task(static_cast<int>(i)).id, static_cast<int>(i));
  }
  auto f = plan->FindOperator("filter");
  ASSERT_TRUE(f.ok());
  const int first = phys->FirstTaskOf(*f);
  for (int j = 0; j < phys->ParallelismOf(*f); ++j) {
    EXPECT_EQ(phys->task(first + j).op, *f);
    EXPECT_EQ(phys->task(first + j).instance, j);
    EXPECT_EQ(phys->TaskId(*f, j), first + j);
  }
}

TEST(PhysicalPlanTest, JoinPortsAssignedInEdgeOrder) {
  auto plan = testing::TwoWayJoinPlan();
  ASSERT_TRUE(plan.ok());
  auto phys = PhysicalPlan::FromLogical(&*plan);
  ASSERT_TRUE(phys.ok());
  auto j = plan->FindOperator("join");
  auto f1 = plan->FindOperator("f1");
  auto f2 = plan->FindOperator("f2");
  ASSERT_TRUE(j.ok() && f1.ok() && f2.ok());
  int port_f1 = -1, port_f2 = -1;
  for (const ChannelGroup& g : phys->channels()) {
    if (g.to_op == *j && g.from_op == *f1) port_f1 = g.input_port;
    if (g.to_op == *j && g.from_op == *f2) port_f2 = g.input_port;
  }
  EXPECT_EQ(port_f1, 0);
  EXPECT_EQ(port_f2, 1);
}

TEST(PhysicalPlanTest, ForwardDegradesToRebalanceOnParallelismMismatch) {
  PlanBuilder b;
  auto s = b.Source("s", testing::KeyValueStream(),
                    testing::PoissonArrival(100), 2);
  auto m = b.Map("m", s, 4);  // parallelism differs from source
  b.WithPartitioning(m, Partitioning::kForward);
  b.Sink("k", m, 4);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  auto phys = PhysicalPlan::FromLogical(&*plan);
  ASSERT_TRUE(phys.ok());
  auto mid = plan->FindOperator("m");
  ASSERT_TRUE(mid.ok());
  for (const ChannelGroup& g : phys->channels()) {
    if (g.to_op == *mid) {
      EXPECT_EQ(g.mode, Partitioning::kRebalance);
    }
  }
}

TEST(PhysicalPlanTest, ForwardKeptWhenParallelismMatches) {
  PlanBuilder b;
  auto s = b.Source("s", testing::KeyValueStream(),
                    testing::PoissonArrival(100), 4);
  auto m = b.Map("m", s, 4);
  b.WithPartitioning(m, Partitioning::kForward);
  b.Sink("k", m, 4);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  auto phys = PhysicalPlan::FromLogical(&*plan);
  ASSERT_TRUE(phys.ok());
  auto mid = plan->FindOperator("m");
  for (const ChannelGroup& g : phys->channels()) {
    if (g.to_op == *mid) {
      EXPECT_EQ(g.mode, Partitioning::kForward);
    }
  }
}

TEST(PhysicalPlanTest, PartitionKeyFields) {
  auto plan = testing::TwoWayJoinPlan();
  ASSERT_TRUE(plan.ok());
  auto phys = PhysicalPlan::FromLogical(&*plan);
  ASSERT_TRUE(phys.ok());
  auto j = plan->FindOperator("join");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(phys->PartitionKeyField(*j, 0), 0u);
  EXPECT_EQ(phys->PartitionKeyField(*j, 1), 0u);
  auto f1 = plan->FindOperator("f1");
  EXPECT_EQ(phys->PartitionKeyField(*f1, 0), OperatorDescriptor::kNoKey);
}

TEST(PhysicalPlanTest, InstancesPerOpMatchesPlan) {
  auto plan = testing::LinearPlan(1000.0, 5);
  ASSERT_TRUE(plan.ok());
  auto phys = PhysicalPlan::FromLogical(&*plan);
  ASSERT_TRUE(phys.ok());
  auto per_op = phys->InstancesPerOp();
  ASSERT_EQ(per_op.size(), plan->NumOperators());
  int total = 0;
  for (int p : per_op) total += p;
  EXPECT_EQ(total, plan->TotalParallelism());
}

TEST(PhysicalPlanTest, ToStringMentionsChannels) {
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  auto phys = PhysicalPlan::FromLogical(&*plan);
  ASSERT_TRUE(phys.ok());
  EXPECT_NE(phys->ToString().find("hash"), std::string::npos);
}

}  // namespace
}  // namespace pdsp
