#include "src/data/value.h"

#include <cmath>

#include "src/common/string_util.h"

namespace pdsp {

namespace {

// FNV-1a over raw bytes.
uint64_t FnvHash(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

uint64_t HashInt64Value(int64_t v) { return FnvHash(&v, sizeof(v), 0x11); }

uint64_t HashDoubleValue(double d) {
  if (d == std::floor(d) && std::abs(d) < 9.2e18) {
    return HashInt64Value(static_cast<int64_t>(d));
  }
  return FnvHash(&d, sizeof(d), 0x11);
}

uint64_t HashStringValue(std::string_view s) {
  return FnvHash(s.data(), s.size(), 0x22);
}

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt:
      return "int";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "?";
}

double Value::AsNumeric() const {
  switch (type()) {
    case DataType::kInt:
      return static_cast<double>(AsInt());
    case DataType::kDouble:
      return AsDouble();
    case DataType::kString:
      return static_cast<double>(AsString().size());
  }
  return 0.0;
}

size_t Value::WireSize() const {
  switch (type()) {
    case DataType::kInt:
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return AsString().size() + 4;  // length prefix
  }
  return 8;
}

bool Value::operator<(const Value& other) const {
  if (is_string() && other.is_string()) return AsString() < other.AsString();
  return AsNumeric() < other.AsNumeric();
}

bool Value::operator==(const Value& other) const {
  if (is_string() != other.is_string()) return AsNumeric() == other.AsNumeric();
  if (is_string()) return AsString() == other.AsString();
  return AsNumeric() == other.AsNumeric();
}

uint64_t Value::Hash() const {
  switch (type()) {
    case DataType::kInt:
      return HashInt64Value(AsInt());
    case DataType::kDouble:
      // Integral doubles hash identically to kInt so that 3 and 3.0 land in
      // the same partition (see HashDoubleValue).
      return HashDoubleValue(AsDouble());
    case DataType::kString:
      return HashStringValue(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kInt:
      return StrFormat("%lld", static_cast<long long>(AsInt()));
    case DataType::kDouble:
      return StrFormat("%g", AsDouble());
    case DataType::kString:
      return AsString();
  }
  return "?";
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named '" + name + "'");
}

Status Schema::AddField(Field field) {
  for (const Field& f : fields_) {
    if (f.name == field.name) {
      return Status::AlreadyExists("duplicate field '" + field.name + "'");
    }
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

size_t Schema::EstimatedTupleBytes() const {
  size_t bytes = 8;  // timestamp
  for (const Field& f : fields_) {
    bytes += (f.type == DataType::kString) ? 16 : 8;
  }
  return bytes;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(f.name + ":" + DataTypeToString(f.type));
  }
  return Join(parts, ", ");
}

size_t Tuple::WireSize() const {
  size_t bytes = 8;  // timestamp
  for (const Value& v : values) bytes += v.WireSize();
  return bytes;
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (const Value& v : values) parts.push_back(v.ToString());
  return "(" + Join(parts, ", ") + StrFormat(") @%.6f", event_time);
}

}  // namespace pdsp
