// Microbenchmarks for the discrete-event simulator itself: virtual-seconds
// simulated per wall-second across plan shapes and parallelism, which bounds
// how large an experiment sweep the harness can afford.

#include <benchmark/benchmark.h>

#include "src/obs/host_profile.h"
#include "src/sim/simulation.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

void RunSim(benchmark::State& state, const LogicalPlan& plan, double rate,
            bool observability = true, bool attribute = false) {
  (void)rate;
  int64_t tuples = 0;
  for (auto _ : state) {
    ExecutionOptions opt;
    opt.sim.duration_s = 1.0;
    opt.sim.warmup_s = 0.25;
    opt.sim.seed = 42;
    // Default keeps metric sampling on; the NoObs variants quantify its
    // overhead (acceptance bound: < 5%).
    if (!observability) opt.sim.metrics_interval_s = 0.0;
    // The Attr variants quantify the latency-attribution charging that
    // diagnosis runs opt into (default runs never pay it).
    opt.sim.attribute_latency = attribute;
    auto r = ExecutePlan(plan, Cluster::M510(10), opt);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    tuples += r->source_tuples;
  }
  state.counters["src_tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}

void BM_SimLinearPlan(benchmark::State& state) {
  const auto parallelism = static_cast<int>(state.range(0));
  auto plan = testing::LinearPlan(20000.0, parallelism);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  RunSim(state, *plan, 20000.0);
}
BENCHMARK(BM_SimLinearPlan)->Arg(1)->Arg(8)->Arg(64);

void BM_SimLinearPlanNoObs(benchmark::State& state) {
  const auto parallelism = static_cast<int>(state.range(0));
  auto plan = testing::LinearPlan(20000.0, parallelism);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  RunSim(state, *plan, 20000.0, /*observability=*/false);
}
BENCHMARK(BM_SimLinearPlanNoObs)->Arg(1)->Arg(8)->Arg(64);

void BM_SimJoinPlan(benchmark::State& state) {
  const auto parallelism = static_cast<int>(state.range(0));
  auto plan = testing::TwoWayJoinPlan(5000.0, parallelism);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  RunSim(state, *plan, 5000.0);
}
BENCHMARK(BM_SimJoinPlan)->Arg(1)->Arg(8);

void BM_SimLinearPlanAttr(benchmark::State& state) {
  const auto parallelism = static_cast<int>(state.range(0));
  auto plan = testing::LinearPlan(20000.0, parallelism);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  RunSim(state, *plan, 20000.0, /*observability=*/true, /*attribute=*/true);
}
BENCHMARK(BM_SimLinearPlanAttr)->Arg(8);

void BM_SimJoinPlanAttr(benchmark::State& state) {
  const auto parallelism = static_cast<int>(state.range(0));
  auto plan = testing::TwoWayJoinPlan(5000.0, parallelism);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  RunSim(state, *plan, 5000.0, /*observability=*/true, /*attribute=*/true);
}
BENCHMARK(BM_SimJoinPlanAttr)->Arg(8);

// Host-profiler acceptance pair: the HostProf variant scopes every run in a
// "simulate" phase on the global profiler (what the harness does per
// repeat), the control disables the profiler so the scope is a no-op.
// Acceptance bound: HostProf within 2% of the control.
void RunSimHostProfiled(benchmark::State& state, bool profiler_enabled) {
  auto plan = testing::LinearPlan(20000.0, 8);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  obs::HostProfiler& profiler = obs::HostProfiler::Global();
  const bool was_enabled = profiler.enabled();
  profiler.set_enabled(profiler_enabled);
  int64_t tuples = 0;
  for (auto _ : state) {
    obs::HostProfiler::Phase phase(&profiler, "simulate");
    ExecutionOptions opt;
    opt.sim.duration_s = 1.0;
    opt.sim.warmup_s = 0.25;
    opt.sim.seed = 42;
    auto r = ExecutePlan(*plan, Cluster::M510(10), opt);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      profiler.set_enabled(was_enabled);
      return;
    }
    tuples += r->source_tuples;
  }
  profiler.set_enabled(was_enabled);
  state.counters["src_tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}

void BM_SimLinearPlanHostProf(benchmark::State& state) {
  RunSimHostProfiled(state, /*profiler_enabled=*/true);
}
BENCHMARK(BM_SimLinearPlanHostProf);

void BM_SimLinearPlanHostProfOff(benchmark::State& state) {
  RunSimHostProfiled(state, /*profiler_enabled=*/false);
}
BENCHMARK(BM_SimLinearPlanHostProfOff);

}  // namespace
}  // namespace pdsp
