#include "src/workload/query_generator.h"

#include <gtest/gtest.h>

#include <set>

#include "src/query/cardinality.h"
#include "src/sim/simulation.h"

namespace pdsp {
namespace {

TEST(QueryGeneratorTest, AllStructuresGenerateValidPlans) {
  QueryGenerator gen(QueryGenOptions{}, 42);
  for (SyntheticStructure s : AllSyntheticStructures()) {
    auto plan = gen.Generate(s);
    ASSERT_TRUE(plan.ok()) << SyntheticStructureToString(s) << ": "
                           << plan.status().ToString();
    EXPECT_TRUE(plan->validated());
    EXPECT_GE(plan->NumOperators(), 3u);
  }
}

TEST(QueryGeneratorTest, StructureShapesMatch) {
  QueryGenerator gen(QueryGenOptions{}, 7);
  auto linear = gen.Generate(SyntheticStructure::kLinear);
  ASSERT_TRUE(linear.ok());
  EXPECT_EQ(linear->NumOperators(), 4u);  // src, filter, agg, sink
  EXPECT_EQ(linear->SourceIds().size(), 1u);

  auto chain3 = gen.Generate(SyntheticStructure::kChain3Filters);
  ASSERT_TRUE(chain3.ok());
  EXPECT_EQ(chain3->NumOperators(), 6u);

  auto join2 = gen.Generate(SyntheticStructure::kTwoWayJoin);
  ASSERT_TRUE(join2.ok());
  EXPECT_EQ(join2->SourceIds().size(), 2u);

  auto join4 = gen.Generate(SyntheticStructure::kFourWayJoin);
  ASSERT_TRUE(join4.ok());
  EXPECT_EQ(join4->SourceIds().size(), 4u);
  // Three cascaded joins.
  int joins = 0;
  for (size_t i = 0; i < join4->NumOperators(); ++i) {
    joins += join4->op(static_cast<LogicalPlan::OpId>(i)).type ==
             OperatorType::kWindowJoin;
  }
  EXPECT_EQ(joins, 3);
}

TEST(QueryGeneratorTest, FiltersHaveBoundedSelectivity) {
  QueryGenOptions opt;
  opt.min_filter_selectivity = 0.15;
  opt.max_filter_selectivity = 0.85;
  QueryGenerator gen(opt, 99);
  for (int i = 0; i < 30; ++i) {
    auto plan = gen.GenerateRandom();
    ASSERT_TRUE(plan.ok());
    for (size_t op = 0; op < plan->NumOperators(); ++op) {
      const auto& desc = plan->op(static_cast<LogicalPlan::OpId>(op));
      if (desc.type != OperatorType::kFilter) continue;
      // Annotated during generation; must be inside (0, 1) per Section 3.1.
      EXPECT_GT(desc.selectivity_hint, 0.05);
      EXPECT_LT(desc.selectivity_hint, 0.95);
    }
  }
}

TEST(QueryGeneratorTest, FixedEventRateHonored) {
  QueryGenOptions opt;
  opt.fixed_event_rate = 12345.0;
  QueryGenerator gen(opt, 3);
  auto plan = gen.Generate(SyntheticStructure::kTwoWayJoin);
  ASSERT_TRUE(plan.ok());
  for (const SourceBinding& src : plan->sources()) {
    EXPECT_DOUBLE_EQ(src.arrival.rate, 12345.0);
  }
}

TEST(QueryGeneratorTest, RandomRatesRespectCap) {
  QueryGenOptions opt;
  opt.rate_cap = 100000.0;
  QueryGenerator gen(opt, 5);
  for (int i = 0; i < 30; ++i) {
    auto plan = gen.GenerateRandom();
    ASSERT_TRUE(plan.ok());
    for (const SourceBinding& src : plan->sources()) {
      EXPECT_LE(src.arrival.rate, 100000.0);
    }
  }
}

TEST(QueryGeneratorTest, DeterministicForSeed) {
  QueryGenerator a(QueryGenOptions{}, 11);
  QueryGenerator b(QueryGenOptions{}, 11);
  auto pa = a.Generate(SyntheticStructure::kChain2Filters);
  auto pb = b.Generate(SyntheticStructure::kChain2Filters);
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_EQ(pa->ToString(), pb->ToString());
}

TEST(QueryGeneratorTest, VariedSeedsGiveVariedParameters) {
  QueryGenerator gen(QueryGenOptions{}, 13);
  std::set<std::string> shapes;
  for (int i = 0; i < 10; ++i) {
    auto plan = gen.Generate(SyntheticStructure::kLinear);
    ASSERT_TRUE(plan.ok());
    shapes.insert(plan->ToString());
  }
  EXPECT_GT(shapes.size(), 5u);
}

TEST(QueryGeneratorTest, JoinOutputRatesStayBounded) {
  // The generator scales join key spaces with the window contents so the
  // join expansion factor stays O(1): predicted output rate must not exceed
  // a small multiple of the total input rate.
  QueryGenOptions opt;
  opt.fixed_event_rate = 50000.0;
  QueryGenerator gen(opt, 17);
  for (int i = 0; i < 20; ++i) {
    auto plan = gen.Generate(SyntheticStructure::kTwoWayJoin);
    ASSERT_TRUE(plan.ok());
    auto cards = CardinalityModel::Compute(*plan);
    ASSERT_TRUE(cards.ok());
    auto j = plan->FindOperator("join1");
    ASSERT_TRUE(j.ok());
    EXPECT_LT((*cards)[*j].output_rate, 50000.0 * 2 * 8)
        << plan->ToString();
  }
}

TEST(QueryGeneratorTest, GeneratedPlansExecuteInSimulation) {
  QueryGenOptions opt;
  opt.fixed_event_rate = 3000.0;
  opt.default_parallelism = 2;
  // Keep windows short and time-based so every structure produces sink
  // results within the brief simulation horizon (a keyed count window of
  // 5000 tuples over 10k keys legitimately never fires in 3 seconds).
  opt.count_policy_probability = 0.0;
  opt.window_durations_ms = {250, 500, 1000};
  opt.max_keys = 1000;
  QueryGenerator gen(opt, 23);
  ExecutionOptions exec;
  exec.sim.duration_s = 3.0;
  exec.sim.warmup_s = 0.5;
  for (SyntheticStructure s : AllSyntheticStructures()) {
    auto plan = gen.Generate(s);
    ASSERT_TRUE(plan.ok()) << SyntheticStructureToString(s);
    auto r = ExecutePlan(*plan, Cluster::M510(4), exec);
    ASSERT_TRUE(r.ok()) << SyntheticStructureToString(s) << ": "
                        << r.status().ToString();
    EXPECT_GT(r->sink_tuples, 0) << SyntheticStructureToString(s);
  }
}

TEST(QueryGeneratorTest, StructureNamesAreUnique) {
  std::set<std::string> names;
  for (SyntheticStructure s : AllSyntheticStructures()) {
    names.insert(SyntheticStructureToString(s));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumSyntheticStructures));
}

}  // namespace
}  // namespace pdsp
