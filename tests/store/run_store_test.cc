#include "src/store/run_store.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "src/apps/apps.h"
#include "src/store/plan_serde.h"
#include "src/workload/query_generator.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

class RunStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/pdsp_run_store_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

SimResult FakeResult() {
  SimResult r;
  r.median_latency_s = 0.5;
  r.mean_latency_s = 0.6;
  r.p95_latency_s = 0.9;
  r.throughput_tps = 1234.0;
  r.source_tuples = 10000;
  r.sink_tuples = 500;
  OperatorRunStats s;
  s.name = "src";
  s.parallelism = 2;
  s.tuples_in = 10000;
  r.op_stats.push_back(s);
  return r;
}

TEST(ValueSerdeTest, RoundTripsAllTypes) {
  for (const Value& v :
       {Value(42), Value(-1.5), Value("hello \"quoted\"")}) {
    auto back = ValueFromJson(ValueToJson(v));
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(*back == v);
    EXPECT_EQ(back->type(), v.type());
  }
}

TEST(PlanSerdeTest, RequiresValidatedPlan) {
  LogicalPlan raw;
  EXPECT_TRUE(PlanToJson(raw).status().IsFailedPrecondition());
}

TEST(PlanSerdeTest, LinearPlanRoundTrips) {
  auto plan = testing::LinearPlan(12345.0, 3);
  ASSERT_TRUE(plan.ok());
  auto json = PlanToJson(*plan);
  ASSERT_TRUE(json.ok());
  auto restored = PlanFromJson(*json);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->ToString(), plan->ToString());
  EXPECT_EQ(restored->sources()[0].arrival.rate, 12345.0);
  EXPECT_EQ(restored->sources()[0].stream.schema.ToString(),
            plan->sources()[0].stream.schema.ToString());
}

TEST(PlanSerdeTest, GeneratedPlansRoundTripThroughText) {
  QueryGenerator gen(QueryGenOptions{}, 77);
  for (int i = 0; i < 10; ++i) {
    auto plan = gen.GenerateRandom();
    ASSERT_TRUE(plan.ok());
    auto json = PlanToJson(*plan);
    ASSERT_TRUE(json.ok());
    // Through the full text layer, as the store does.
    auto reparsed = Json::Parse(json->Dump(2));
    ASSERT_TRUE(reparsed.ok());
    auto restored = PlanFromJson(*reparsed);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored->ToString(), plan->ToString());
  }
}

TEST(PlanSerdeTest, AppPlansRoundTrip) {
  AppOptions opt;
  opt.parallelism = 4;
  for (AppId app : {AppId::kWordCount, AppId::kAdAnalytics,
                    AppId::kSmartGrid}) {
    auto plan = MakeApp(app, opt);
    ASSERT_TRUE(plan.ok());
    auto json = PlanToJson(*plan);
    ASSERT_TRUE(json.ok());
    auto restored = PlanFromJson(*json);
    ASSERT_TRUE(restored.ok()) << GetAppInfo(app).abbrev << ": "
                               << restored.status().ToString();
    EXPECT_EQ(restored->ToString(), plan->ToString());
  }
}

TEST(PlanSerdeTest, RejectsCorruptDocuments) {
  EXPECT_FALSE(PlanFromJson(Json::Object()).ok());  // no version
  Json bad = Json::Object();
  bad.Set("version", Json::Int(99));
  EXPECT_FALSE(PlanFromJson(bad).ok());  // wrong version
  bad.Set("version", Json::Int(1));
  EXPECT_FALSE(PlanFromJson(bad).ok());  // no operators
}

TEST(SimResultSerdeTest, CarriesMetrics) {
  Json j = SimResultToJson(FakeResult());
  EXPECT_DOUBLE_EQ(j["latency"]["p50_s"].AsNumber(), 0.5);
  EXPECT_EQ(j["sink_tuples"].AsInt(), 500);
  EXPECT_EQ(j["operators"].size(), 1u);
  EXPECT_EQ(j["operators"].at(0)["name"].AsString(), "src");
}

TEST_F(RunStoreTest, SaveLoadListDelete) {
  RunStore store(dir_);
  auto plan = testing::LinearPlan(1000.0, 2);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(
      store.SaveRun("run1", *plan, Cluster::M510(4), FakeResult()).ok());
  ASSERT_TRUE(
      store.SaveRun("run2", *plan, Cluster::C6525(4), FakeResult()).ok());

  auto ids = store.ListRuns();
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<std::string>{"run1", "run2"}));

  auto doc = store.LoadRun("run1");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)["id"].AsString(), "run1");
  EXPECT_EQ((*doc)["cluster"]["node_model"].AsString(), "m510");
  EXPECT_DOUBLE_EQ((*doc)["metrics"]["latency"]["p50_s"].AsNumber(), 0.5);

  auto restored = store.LoadPlan("run1");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->ToString(), plan->ToString());

  ASSERT_TRUE(store.DeleteRun("run1").ok());
  EXPECT_TRUE(store.LoadRun("run1").status().IsNotFound());
  EXPECT_TRUE(store.DeleteRun("run1").IsNotFound());
}

TEST_F(RunStoreTest, RejectsBadIds) {
  RunStore store(dir_);
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  for (const char* id : {"", "a/b", "../evil"}) {
    EXPECT_FALSE(
        store.SaveRun(id, *plan, Cluster::M510(2), FakeResult()).ok())
        << id;
  }
}

TEST_F(RunStoreTest, SavedPlanReexecutesIdentically) {
  RunStore store(dir_);
  auto plan = testing::LinearPlan(5000.0, 2);
  ASSERT_TRUE(plan.ok());
  ExecutionOptions exec;
  exec.sim.duration_s = 2.0;
  exec.sim.warmup_s = 0.5;
  auto original = ExecutePlan(*plan, Cluster::M510(4), exec);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(
      store.SaveRun("repro", *plan, Cluster::M510(4), *original).ok());

  auto restored = store.LoadPlan("repro");
  ASSERT_TRUE(restored.ok());
  auto replay = ExecutePlan(*restored, Cluster::M510(4), exec);
  ASSERT_TRUE(replay.ok());
  // Deterministic engine + identical plan => identical results.
  EXPECT_EQ(replay->sink_tuples, original->sink_tuples);
  EXPECT_DOUBLE_EQ(replay->median_latency_s, original->median_latency_s);
}

}  // namespace
}  // namespace pdsp
