#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace pdsp {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, msg.c_str());
}

}  // namespace pdsp
