// Microbenchmarks for the discrete-event simulator itself: virtual-seconds
// simulated per wall-second across plan shapes and parallelism, which bounds
// how large an experiment sweep the harness can afford.

#include <benchmark/benchmark.h>

#include "src/obs/host_profile.h"
#include "src/obs/mem.h"
#include "src/obs/prof.h"
#include "src/sim/simulation.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

void RunSim(benchmark::State& state, const LogicalPlan& plan, double rate,
            bool observability = true, bool attribute = false) {
  (void)rate;
  int64_t tuples = 0;
  for (auto _ : state) {
    ExecutionOptions opt;
    opt.sim.duration_s = 1.0;
    opt.sim.warmup_s = 0.25;
    opt.sim.seed = 42;
    // Default keeps metric sampling on; the NoObs variants quantify its
    // overhead (acceptance bound: < 5%).
    if (!observability) opt.sim.metrics_interval_s = 0.0;
    // The Attr variants quantify the latency-attribution charging that
    // diagnosis runs opt into (default runs never pay it).
    opt.sim.attribute_latency = attribute;
    auto r = ExecutePlan(plan, Cluster::M510(10), opt);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    tuples += r->source_tuples;
  }
  state.counters["src_tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}

void BM_SimLinearPlan(benchmark::State& state) {
  const auto parallelism = static_cast<int>(state.range(0));
  auto plan = testing::LinearPlan(20000.0, parallelism);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  RunSim(state, *plan, 20000.0);
}
BENCHMARK(BM_SimLinearPlan)->Arg(1)->Arg(8)->Arg(64);

void BM_SimLinearPlanNoObs(benchmark::State& state) {
  const auto parallelism = static_cast<int>(state.range(0));
  auto plan = testing::LinearPlan(20000.0, parallelism);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  RunSim(state, *plan, 20000.0, /*observability=*/false);
}
BENCHMARK(BM_SimLinearPlanNoObs)->Arg(1)->Arg(8)->Arg(64);

void BM_SimJoinPlan(benchmark::State& state) {
  const auto parallelism = static_cast<int>(state.range(0));
  auto plan = testing::TwoWayJoinPlan(5000.0, parallelism);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  RunSim(state, *plan, 5000.0);
}
BENCHMARK(BM_SimJoinPlan)->Arg(1)->Arg(8);

void BM_SimLinearPlanAttr(benchmark::State& state) {
  const auto parallelism = static_cast<int>(state.range(0));
  auto plan = testing::LinearPlan(20000.0, parallelism);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  RunSim(state, *plan, 20000.0, /*observability=*/true, /*attribute=*/true);
}
BENCHMARK(BM_SimLinearPlanAttr)->Arg(8);

void BM_SimJoinPlanAttr(benchmark::State& state) {
  const auto parallelism = static_cast<int>(state.range(0));
  auto plan = testing::TwoWayJoinPlan(5000.0, parallelism);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  RunSim(state, *plan, 5000.0, /*observability=*/true, /*attribute=*/true);
}
BENCHMARK(BM_SimJoinPlanAttr)->Arg(8);

// Host-profiler acceptance pair: the HostProf variant scopes every run in a
// "simulate" phase on the global profiler (what the harness does per
// repeat), the control disables the profiler so the scope is a no-op.
// Acceptance bound: HostProf within 2% of the control.
void RunSimHostProfiled(benchmark::State& state, bool profiler_enabled) {
  auto plan = testing::LinearPlan(20000.0, 8);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  obs::HostProfiler& profiler = obs::HostProfiler::Global();
  const bool was_enabled = profiler.enabled();
  profiler.set_enabled(profiler_enabled);
  int64_t tuples = 0;
  for (auto _ : state) {
    obs::HostProfiler::Phase phase(&profiler, "simulate");
    ExecutionOptions opt;
    opt.sim.duration_s = 1.0;
    opt.sim.warmup_s = 0.25;
    opt.sim.seed = 42;
    auto r = ExecutePlan(*plan, Cluster::M510(10), opt);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      profiler.set_enabled(was_enabled);
      return;
    }
    tuples += r->source_tuples;
  }
  profiler.set_enabled(was_enabled);
  state.counters["src_tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}

void BM_SimLinearPlanHostProf(benchmark::State& state) {
  RunSimHostProfiled(state, /*profiler_enabled=*/true);
}
BENCHMARK(BM_SimLinearPlanHostProf);

void BM_SimLinearPlanHostProfOff(benchmark::State& state) {
  RunSimHostProfiled(state, /*profiler_enabled=*/false);
}
BENCHMARK(BM_SimLinearPlanHostProfOff);

// Sampling-CPU-profiler acceptance pair: the Prof variant runs the sampler
// at the default 97 Hz with the simulate phase marked — exactly what
// `--profile` adds to a harness cell, including the per-firing operator
// markers inside the engine. The control leaves the profiler off, so every
// ProfScope collapses to one relaxed load + branch. Acceptance bound
// (tools/bench_gate.sh): Prof within 10% of the control in CI noise; the
// design target is <= 2%.
void RunSimCpuProfiled(benchmark::State& state, bool profiler_enabled) {
  auto plan = testing::LinearPlan(20000.0, 8);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  obs::prof::ThreadRegistration registration("bench-main");
  int64_t tuples = 0;
  for (auto _ : state) {
    obs::prof::ProfOptions options;
    options.enabled = profiler_enabled;
    options.hz = 97.0;
    obs::prof::Profiler profiler(options);
    if (profiler_enabled) {
      Status st = profiler.Start();
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    {
      obs::prof::ProfScope phase(obs::prof::FrameKind::kPhase, "simulate");
      ExecutionOptions opt;
      opt.sim.duration_s = 1.0;
      opt.sim.warmup_s = 0.25;
      opt.sim.seed = 42;
      auto r = ExecutePlan(*plan, Cluster::M510(10), opt);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      tuples += r->source_tuples;
    }
    if (profiler_enabled) {
      const obs::prof::CpuProfile profile = profiler.Stop();
      benchmark::DoNotOptimize(profile.samples);
    }
  }
  state.counters["src_tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}

void BM_SimLinearPlanProf(benchmark::State& state) {
  RunSimCpuProfiled(state, /*profiler_enabled=*/true);
}
BENCHMARK(BM_SimLinearPlanProf);

void BM_SimLinearPlanProfOff(benchmark::State& state) {
  RunSimCpuProfiled(state, /*profiler_enabled=*/false);
}
BENCHMARK(BM_SimLinearPlanProfOff);

// Allocation-sampler acceptance pair: the MemProf variant arms the
// interposed operator-new hooks at the default 1/512 KiB interval — exactly
// what `--mem-profile` adds to a harness cell. The control leaves the
// profiler off, so every allocation pays only the relaxed gate load in
// NoteAlloc. Acceptance bound (tools/bench_gate.sh): MemProf within 10% of
// the control in CI noise; the design target is <= 2%.
void RunSimMemProfiled(benchmark::State& state, bool profiler_enabled) {
  auto plan = testing::LinearPlan(20000.0, 8);
  if (!plan.ok()) {
    state.SkipWithError("plan");
    return;
  }
  obs::prof::ThreadRegistration registration("bench-main");
  int64_t tuples = 0;
  for (auto _ : state) {
    obs::mem::MemOptions options;
    options.enabled = profiler_enabled;
    obs::mem::MemProfiler profiler(options);
    if (profiler_enabled) {
      Status st = profiler.Start();
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    {
      obs::prof::ProfScope phase(obs::prof::FrameKind::kPhase, "simulate");
      ExecutionOptions opt;
      opt.sim.duration_s = 1.0;
      opt.sim.warmup_s = 0.25;
      opt.sim.seed = 42;
      auto r = ExecutePlan(*plan, Cluster::M510(10), opt);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      tuples += r->source_tuples;
    }
    if (profiler_enabled) {
      const obs::mem::MemProfile profile = profiler.Stop();
      benchmark::DoNotOptimize(profile.samples);
    }
  }
  state.counters["src_tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}

void BM_SimLinearPlanMemProf(benchmark::State& state) {
  RunSimMemProfiled(state, /*profiler_enabled=*/true);
}
BENCHMARK(BM_SimLinearPlanMemProf);

void BM_SimLinearPlanMemProfOff(benchmark::State& state) {
  RunSimMemProfiled(state, /*profiler_enabled=*/false);
}
BENCHMARK(BM_SimLinearPlanMemProfOff);

}  // namespace
}  // namespace pdsp
