// Figure 3 (top): end-to-end latency of synthetic parallel query structures
// — linear, chained filters, multi-way joins — across parallelism categories
// XS..XXL on the homogeneous 10-node m510 cluster, at a high event rate.
//
// Expected shape (paper O1/O2/O4): filter-only structures stay flat across
// categories; joins saturate at XS (high latency), improve with parallel
// instances, then degrade again at XL/XXL where shuffle + coordination
// overhead outweighs the gains.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/common/string_util.h"
#include "src/harness/synthetic_suite.h"

namespace pdsp {

int Main(int argc, char** argv) {
  const bench::DriverSweepOptions opts = bench::ParseDriverOptions(argc, argv);
  const Cluster cluster = Cluster::M510(10);
  const RunProtocol protocol = bench::FigureProtocol();
  const double rate = bench::FastMode() ? 50000.0 : 200000.0;

  const std::vector<SyntheticStructure> structures = {
      SyntheticStructure::kLinear,        SyntheticStructure::kChain2Filters,
      SyntheticStructure::kChain3Filters, SyntheticStructure::kTwoWayJoin,
      SyntheticStructure::kThreeWayJoin,
  };

  std::vector<std::string> columns = {"structure"};
  for (const auto& cat : StandardCategories()) {
    columns.push_back(std::string(cat.name) + "(ms)");
  }
  TableReporter table(
      StrFormat("Fig. 3 (top): synthetic PQP latency vs parallelism, "
                "m510 x10, %.0fk ev/s per source",
                rate / 1000.0),
      columns);

  std::vector<exec::SweepCell> cells;
  for (SyntheticStructure structure : structures) {
    for (const auto& cat : StandardCategories()) {
      exec::SweepCell cell;
      CanonicalOptions opt;
      opt.event_rate = rate;
      opt.parallelism = cat.degree;
      cell.make_plan = [structure, opt] {
        return MakeCanonicalSynthetic(structure, opt);
      };
      cell.cluster = cluster;
      cell.protocol = protocol;
      cell.protocol.label =
          StrFormat("fig3/%s", SyntheticStructureToString(structure));
      cell.label = StrFormat("fig3/%s/%s",
                             SyntheticStructureToString(structure), cat.name);
      cell.protocol.obs.enabled = true;
      cell.protocol.obs.dir =
          StrFormat("results/fig3_synthetic/%s_%s",
                    SyntheticStructureToString(structure), cat.name);
      // Every cell leaves a provenance record: sweep history accumulates in
      // the shared run ledger.
      cell.protocol.ledger.enabled = true;
      cell.protocol.ledger.cluster_name = "m510";
      cells.push_back(std::move(cell));
    }
  }

  const exec::SweepResult sweep =
      bench::RunDriverSweep(std::move(cells), "fig3_synthetic", opts);

  size_t idx = 0;
  for (SyntheticStructure structure : structures) {
    std::vector<std::string> row = {SyntheticStructureToString(structure)};
    for ([[maybe_unused]] const auto& cat : StandardCategories()) {
      row.push_back(bench::LatencyOrNa(sweep.cells[idx++]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  Status st = table.WriteCsv("results/fig3_synthetic.csv");
  if (!st.ok()) std::fprintf(stderr, "csv: %s\n", st.ToString().c_str());
  return bench::SweepExitCode(sweep);
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
