// Tuple/field value generation and schema randomization — the "data stream"
// half of the workload generator (Section 3.1): random tuple widths (1-15),
// per-item data types over {string, double, int}, and per-field value
// distributions including Zipf-skewed keys.

#ifndef PDSP_DATA_GENERATOR_H_
#define PDSP_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/data/batch.h"
#include "src/data/value.h"

namespace pdsp {

/// Value distribution families for one field.
enum class FieldDistribution {
  kUniformInt = 0,   ///< uniform integer in [min, max]
  kUniformDouble,    ///< uniform double in [min, max)
  kNormalDouble,     ///< normal(mean=(min+max)/2, sd=(max-min)/6), clamped
  kZipfKey,          ///< integer key in [1, cardinality], Zipf(zipf_s)
  kUniformKey,       ///< integer key in [1, cardinality], uniform
  kWordString,       ///< word drawn from a synthetic dictionary
  kSequence,         ///< monotonically increasing integer (ids)
  kSentence,         ///< [min,max] dictionary words joined by spaces
};

const char* FieldDistributionToString(FieldDistribution dist);

/// \brief How to generate one field's values.
struct FieldGeneratorSpec {
  FieldDistribution dist = FieldDistribution::kUniformInt;
  double min = 0.0;
  double max = 100.0;
  int64_t cardinality = 1000;  ///< distinct keys / dictionary size
  double zipf_s = 0.8;         ///< skew for kZipfKey

  /// The DataType this spec produces.
  DataType OutputType() const;
};

/// \brief Generates tuples conforming to a schema, one field spec per field.
class TupleGenerator {
 public:
  /// Validates that specs match the schema's arity and types.
  static Result<TupleGenerator> Create(Schema schema,
                                       std::vector<FieldGeneratorSpec> specs,
                                       uint64_t seed);

  /// Next tuple stamped with the given event time.
  Tuple Next(double event_time);

  /// Columnar counterpart of Next(): appends the next tuple directly to
  /// *out (whose layout must match this generator's schema) without
  /// materializing a Tuple. Draws the same RNG sequence as Next(), field by
  /// field in order, so a batch built this way is bit-identical to the
  /// row-at-a-time stream.
  void AppendNext(double event_time, double birth, uint32_t attr_id,
                  data::Batch* out);

  const Schema& schema() const { return schema_; }
  const std::vector<FieldGeneratorSpec>& specs() const { return specs_; }

 private:
  TupleGenerator(Schema schema, std::vector<FieldGeneratorSpec> specs,
                 uint64_t seed)
      : schema_(std::move(schema)), specs_(std::move(specs)), rng_(seed) {}

  Value GenerateField(const FieldGeneratorSpec& spec, size_t field_idx);

  Schema schema_;
  std::vector<FieldGeneratorSpec> specs_;
  Rng rng_;
  std::vector<int64_t> sequence_counters_ = std::vector<int64_t>(32, 0);
};

/// \brief Options for random stream-schema generation (Table 3 ranges).
struct SchemaRandomizerOptions {
  int min_tuple_width = 1;
  int max_tuple_width = 15;
  bool allow_strings = true;
  /// Fraction of numeric fields that are skewed (Zipf) key fields.
  double key_field_fraction = 0.3;
};

/// \brief A randomly drawn stream definition: schema plus field specs.
struct StreamSpec {
  Schema schema;
  std::vector<FieldGeneratorSpec> specs;

  /// Mean tuple wire size implied by the schema.
  size_t EstimatedTupleBytes() const { return schema.EstimatedTupleBytes(); }
};

/// Draws a random stream definition per the options. Field i is named "f<i>".
StreamSpec RandomStreamSpec(const SchemaRandomizerOptions& options, Rng* rng);

/// Deterministic synthetic dictionary word for (dictionary index).
std::string DictionaryWord(int64_t index);

}  // namespace pdsp

#endif  // PDSP_DATA_GENERATOR_H_
