// The real-world application suite of Table 2: fourteen streaming
// applications with genuine operator logic (tokenizers, anomaly scoring,
// sentiment lexicons, spike detection, per-account fraud models, ...) and
// domain-faithful synthetic data generators. Each application materializes
// as a LogicalPlan parameterized by event rate and parallelism, ready to run
// on the simulated cluster.

#ifndef PDSP_APPS_APPS_H_
#define PDSP_APPS_APPS_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/query/plan.h"

namespace pdsp {

/// The fourteen applications (Table 2).
enum class AppId {
  kWordCount = 0,      ///< WC  — text analytics
  kMachineOutlier,     ///< MO  — datacenter monitoring
  kLinearRoad,         ///< LR  — road tolling
  kSentimentAnalysis,  ///< SA  — social media
  kSmartGrid,          ///< SG  — DEBS'14 smart plugs
  kSpikeDetection,     ///< SD  — IoT sensor spikes
  kAdAnalytics,        ///< AD  — impressions x clicks
  kClickAnalytics,     ///< CA  — clickstream dedup + stats
  kTrafficMonitoring,  ///< TM  — GPS map matching
  kLogProcessing,      ///< LP  — web server logs
  kTrendingTopics,     ///< TT  — hashtag trends
  kFraudDetection,     ///< FD  — transaction Markov model
  kBargainIndex,       ///< BI  — stock quotes vs VWAP
  kTpcH,               ///< TPCH — streaming pricing summary (Q1-like)
};

constexpr int kNumApps = 14;

/// \brief Suite metadata (one Table 2 row).
struct AppInfo {
  AppId id;
  const char* abbrev;
  const char* name;
  const char* area;
  const char* description;
  /// Embeds user-defined operators (O3: UDO apps scale unpredictably).
  bool uses_udo;
  /// Data-intensive per the paper's Figure 3/4 grouping (SA, SG, SD, ...).
  bool data_intensive;
};

/// All fourteen applications in AppId order.
const std::vector<AppInfo>& AllApps();

/// Metadata for one application.
const AppInfo& GetAppInfo(AppId id);

/// Looks an application up by its abbreviation ("WC", "SG", ...).
Result<AppId> FindAppByAbbrev(const std::string& abbrev);

/// \brief Parameters shared by all application factories.
struct AppOptions {
  double event_rate = 100000.0;  ///< tuples/s at each source
  int parallelism = 1;           ///< degree for every operator except sink
  uint64_t seed = 7;
  /// Scales all window spans (1.0 = the app's defaults).
  double window_scale = 1.0;
};

/// Builds the validated plan for an application. Registers the suite's UDO
/// kinds on first use.
Result<LogicalPlan> MakeApp(AppId id, const AppOptions& options);

/// Registers every application UDO kind in UdoRegistry::Global().
/// Idempotent; called automatically by MakeApp.
void RegisterAppUdos();

/// Synthetic sentiment lexicon shared by the SA app and its tests: the
/// polarity of a dictionary word (+1 positive, -1 negative, 0 neutral).
int WordPolarity(const std::string& word);

}  // namespace pdsp

#endif  // PDSP_APPS_APPS_H_
