// Figure 5: q-error of the four learned cost models (linear regression,
// MLP, random forest, GNN) on synthetic PQPs of increasing complexity
// (linear -> 2-way join -> 3-way join). All models are trained on the same
// simulator-labeled corpus with the same early-stopping protocol, exactly
// as the ML Manager prescribes.
//
// Expected shape (paper O8): the GNN's graph representation tracks query
// structure and stays the most accurate as complexity grows; LR degrades
// fastest.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/common/string_util.h"
#include "src/common/stats.h"
#include "src/harness/harness.h"
#include "src/ml/datagen.h"
#include "src/ml/metrics.h"
#include "src/sim/analytic.h"
#include "src/ml/trainer.h"

namespace pdsp {

int Main(int argc, char** argv) {
  const int jobs = bench::ParseJobs(argc, argv);
  const bool fast = bench::FastMode();
  const std::vector<SyntheticStructure> structures = {
      SyntheticStructure::kLinear,
      SyntheticStructure::kTwoWayJoin,
      SyntheticStructure::kThreeWayJoin,
  };

  // A deliberately hard corpus: rates up to 200k (deep into saturation for
  // unlucky parallelism draws), wild random degrees up to 32, mixed window
  // policies — the regimes where flat aggregate features stop explaining
  // latency and plan structure starts to matter.
  DataGenOptions gen;
  gen.structures = structures;
  gen.num_samples = fast ? 45 : 300;
  gen.seed = 515;
  gen.query.rate_floor = 1000.0;
  gen.query.rate_cap = 200000.0;
  gen.query.count_policy_probability = 0.25;
  gen.query.window_durations_ms = {250, 500, 1000, 2000};
  gen.query.max_keys = 20000;
  gen.strategy = EnumerationStrategy::kRandom;
  gen.enumeration.max_degree = 32;
  gen.execution.sim.duration_s = fast ? 1.5 : 2.5;
  gen.execution.sim.warmup_s = 0.5;
  gen.jobs = jobs;

  const Cluster cluster = Cluster::M510(10);
  std::printf("generating %d labeled queries...\n", gen.num_samples);
  auto corpus = GenerateTrainingData(gen, cluster);
  if (!corpus.ok()) {
    std::fprintf(stderr, "datagen: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  std::printf("corpus: %zu samples (%.1fs collection, %d discarded)\n",
              corpus->dataset.size(), corpus->collection_seconds,
              corpus->discarded);

  auto split = SplitDataset(corpus->dataset, 0.7, 0.15, 77);
  if (!split.ok()) {
    std::fprintf(stderr, "split: %s\n", split.status().ToString().c_str());
    return 1;
  }

  TrainOptions train;
  train.max_epochs = fast ? 60 : 300;
  train.patience = 20;
  train.seed = 9;
  train.gnn_rounds = 3;
  train.gnn_hidden = 48;

  std::vector<std::string> columns = {"model"};
  for (SyntheticStructure s : structures) {
    columns.push_back(StrFormat("%s q50", SyntheticStructureToString(s)));
  }
  columns.push_back("all q50");
  columns.push_back("train(s)");
  columns.push_back("epochs");
  TableReporter table(
      "Fig. 5: learned cost model q-error vs query complexity (m510 x10)",
      columns);

  for (ModelKind kind :
       {ModelKind::kLinearRegression, ModelKind::kMlp,
        ModelKind::kRandomForest, ModelKind::kGnn,
        ModelKind::kGradientBoost}) {
    auto model = MakeModel(kind);
    auto eval = TrainAndEvaluate(model.get(), *split, train);
    if (!eval.ok()) {
      std::fprintf(stderr, "%s: %s\n", ModelKindToString(kind),
                   eval.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> row = {eval->model_name};
    for (SyntheticStructure s : structures) {
      Dataset subset;
      for (const PlanSample& sample : split->test.samples) {
        if (sample.structure_tag == static_cast<int>(s)) {
          subset.samples.push_back(sample);
        }
      }
      if (subset.empty()) {
        row.push_back("n/a");
        continue;
      }
      auto metrics = Evaluate(*model, subset);
      row.push_back(metrics.ok() ? StrFormat("%.2f", metrics->median_q)
                                 : "n/a");
    }
    row.push_back(StrFormat("%.2f", eval->test_metrics.median_q));
    row.push_back(StrFormat("%.2f", eval->train_report.train_seconds));
    row.push_back(StrFormat("%d", eval->train_report.epochs_run));
    table.AddRow(std::move(row));
  }
  // Ablation row: the closed-form analytic queueing model as a non-learned
  // baseline. It needs the plan itself (corpus samples only carry feature
  // encodings), so it is evaluated on freshly generated queries from the
  // same distribution.
  {
    std::vector<std::string> row = {"analytic_baseline"};
    QueryGenOptions qopt = gen.query;
    const Cluster& c = cluster;
    std::vector<double> all_q;
    for (SyntheticStructure s : structures) {
      QueryGenerator qgen(qopt, 9090 + static_cast<uint64_t>(s));
      std::vector<double> qs;
      for (int i = 0; i < (fast ? 5 : 15); ++i) {
        auto plan = qgen.Generate(s);
        if (!plan.ok()) continue;
        Rng prng(100 + static_cast<uint64_t>(i));
        EnumerationOptions eopt;
        eopt.max_degree = 16;
        auto asg = EnumerateParallelism(*plan, EnumerationStrategy::kRandom,
                                        eopt, &prng);
        if (!asg.ok() || !ApplyParallelism(&*plan, (*asg)[0]).ok()) continue;
        auto analytic = EstimateLatencyAnalytically(*plan, c);
        ExecutionOptions exec = gen.execution;
        auto sim = ExecutePlan(*plan, c, exec);
        if (!analytic.ok() || !sim.ok() || sim->sink_tuples == 0) continue;
        qs.push_back(QError(sim->median_latency_s, analytic->latency_s));
      }
      row.push_back(qs.empty() ? "n/a"
                               : StrFormat("%.2f", Percentile(qs, 50.0)));
      for (double q : qs) all_q.push_back(q);
    }
    row.push_back(all_q.empty()
                      ? "n/a"
                      : StrFormat("%.2f", Percentile(all_q, 50.0)));
    row.push_back("0.00");
    row.push_back("0");
    table.AddRow(std::move(row));
  }

  table.Print();
  Status st = table.WriteCsv("results/fig5_cost_models.csv");
  if (!st.ok()) std::fprintf(stderr, "csv: %s\n", st.ToString().c_str());
  return 0;
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
