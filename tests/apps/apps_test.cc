#include "src/apps/apps.h"

#include <gtest/gtest.h>

#include <set>

#include "src/runtime/operators.h"
#include "src/runtime/udo.h"
#include "src/sim/simulation.h"

namespace pdsp {
namespace {

TEST(AppRegistryTest, FourteenApplications) {
  EXPECT_EQ(AllApps().size(), static_cast<size_t>(kNumApps));
  std::set<std::string> abbrevs;
  for (const AppInfo& info : AllApps()) abbrevs.insert(info.abbrev);
  EXPECT_EQ(abbrevs.size(), static_cast<size_t>(kNumApps));
}

TEST(AppRegistryTest, FindByAbbrev) {
  auto sg = FindAppByAbbrev("SG");
  ASSERT_TRUE(sg.ok());
  EXPECT_EQ(*sg, AppId::kSmartGrid);
  EXPECT_TRUE(FindAppByAbbrev("XX").status().IsNotFound());
}

TEST(AppRegistryTest, InfoMatchesId) {
  for (const AppInfo& info : AllApps()) {
    EXPECT_EQ(GetAppInfo(info.id).abbrev, info.abbrev);
  }
}

TEST(AppRegistryTest, DataIntensiveGroupingMatchesPaper) {
  // Figure 3/4 call out SA, SG, SD as the data-intensive UDO apps and WC/LR
  // as the standard-operator apps.
  EXPECT_TRUE(GetAppInfo(AppId::kSentimentAnalysis).data_intensive);
  EXPECT_TRUE(GetAppInfo(AppId::kSmartGrid).data_intensive);
  EXPECT_TRUE(GetAppInfo(AppId::kSpikeDetection).data_intensive);
  EXPECT_FALSE(GetAppInfo(AppId::kWordCount).data_intensive);
  EXPECT_FALSE(GetAppInfo(AppId::kLinearRoad).data_intensive);
}

TEST(AppPlansTest, AllAppsBuildValidPlans) {
  AppOptions opt;
  opt.event_rate = 10000.0;
  opt.parallelism = 2;
  for (const AppInfo& info : AllApps()) {
    auto plan = MakeApp(info.id, opt);
    ASSERT_TRUE(plan.ok()) << info.abbrev << ": "
                           << plan.status().ToString();
    EXPECT_TRUE(plan->validated()) << info.abbrev;
    EXPECT_GE(plan->NumOperators(), 3u) << info.abbrev;
    // Every app embeds at least one UDO (Table 2: custom logic).
    bool has_udo = false;
    for (size_t i = 0; i < plan->NumOperators(); ++i) {
      has_udo |= plan->op(static_cast<LogicalPlan::OpId>(i)).type ==
                 OperatorType::kUdo;
    }
    EXPECT_EQ(has_udo, info.uses_udo) << info.abbrev;
  }
}

TEST(AppPlansTest, BadOptionsRejected) {
  AppOptions opt;
  opt.event_rate = 0.0;
  EXPECT_FALSE(MakeApp(AppId::kWordCount, opt).ok());
  opt.event_rate = 100.0;
  opt.parallelism = 0;
  EXPECT_FALSE(MakeApp(AppId::kWordCount, opt).ok());
  opt.parallelism = 1;
  opt.window_scale = 0.0;
  EXPECT_FALSE(MakeApp(AppId::kWordCount, opt).ok());
}

TEST(AppPlansTest, AdAnalyticsHasJoin) {
  AppOptions opt;
  auto plan = MakeApp(AppId::kAdAnalytics, opt);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->SourceIds().size(), 2u);
  bool has_join = false;
  for (size_t i = 0; i < plan->NumOperators(); ++i) {
    has_join |= plan->op(static_cast<LogicalPlan::OpId>(i)).type ==
                OperatorType::kWindowJoin;
  }
  EXPECT_TRUE(has_join);
}

TEST(AppPlansTest, ParallelismAppliedToAllButSink) {
  AppOptions opt;
  opt.parallelism = 6;
  auto plan = MakeApp(AppId::kSmartGrid, opt);
  ASSERT_TRUE(plan.ok());
  for (size_t i = 0; i < plan->NumOperators(); ++i) {
    const auto& op = plan->op(static_cast<LogicalPlan::OpId>(i));
    if (op.type == OperatorType::kSink) {
      EXPECT_EQ(op.parallelism, 1);
    } else {
      EXPECT_EQ(op.parallelism, 6) << op.name;
    }
  }
}

// Every application must run end-to-end in the simulator and deliver sink
// results — the suite-level integration property.
class AppExecutionTest : public ::testing::TestWithParam<int> {};

TEST_P(AppExecutionTest, RunsAndProducesResults) {
  const AppInfo& info = AllApps()[static_cast<size_t>(GetParam())];
  AppOptions opt;
  opt.event_rate = 5000.0;
  opt.parallelism = 2;
  auto plan = MakeApp(info.id, opt);
  ASSERT_TRUE(plan.ok()) << info.abbrev;
  ExecutionOptions exec;
  exec.sim.duration_s = 4.0;
  exec.sim.warmup_s = 1.0;
  auto r = ExecutePlan(*plan, Cluster::M510(4), exec);
  ASSERT_TRUE(r.ok()) << info.abbrev << ": " << r.status().ToString();
  EXPECT_GT(r->sink_tuples, 0) << info.abbrev;
  EXPECT_GT(r->median_latency_s, 0.0) << info.abbrev;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppExecutionTest,
                         ::testing::Range(0, kNumApps));

TEST(WordPolarityTest, DeterministicAndTernary) {
  EXPECT_EQ(WordPolarity("hello"), WordPolarity("hello"));
  int pos = 0, neg = 0, neutral = 0;
  for (int i = 0; i < 1000; ++i) {
    const int p = WordPolarity(DictionaryWord(i));
    pos += p == 1;
    neg += p == -1;
    neutral += p == 0;
  }
  // Roughly 20/20/60 by construction.
  EXPECT_GT(pos, 100);
  EXPECT_GT(neg, 100);
  EXPECT_GT(neutral, 400);
}

TEST(AppUdosTest, AllKindsRegistered) {
  RegisterAppUdos();
  const UdoRegistry& reg = UdoRegistry::Global();
  for (const char* kind :
       {"tokenize_words", "sa_score", "lp_parse", "tt_extract", "tt_rank",
        "mo_score", "sd_spike", "sg_outlier", "lr_toll", "tm_map_match",
        "fd_score", "bi_vwap", "ca_dedup", "ad_ctr", "tpch_disc_price"}) {
    EXPECT_TRUE(reg.Contains(kind)) << kind;
  }
}

// Direct behavioural checks of selected UDOs through the plan runtime.

StreamElement Elem(std::vector<Value> values, double t = 0.0) {
  StreamElement e;
  e.tuple.values = std::move(values);
  e.tuple.event_time = t;
  e.birth = t;
  return e;
}

std::unique_ptr<OperatorInstance> AppUdoInstance(AppId app,
                                                 const char* op_name) {
  AppOptions opt;
  auto plan = MakeApp(app, opt);
  EXPECT_TRUE(plan.ok());
  static LogicalPlan kept;
  kept = std::move(*plan);
  auto id = kept.FindOperator(op_name);
  EXPECT_TRUE(id.ok()) << op_name;
  auto inst = CreateOperatorInstance(kept, *id, 0, 1);
  EXPECT_TRUE(inst.ok()) << inst.status().ToString();
  return std::move(*inst);
}

TEST(AppUdosTest, TokenizerSplitsSentences) {
  auto inst = AppUdoInstance(AppId::kWordCount, "tokenize");
  std::vector<StreamElement> out;
  ASSERT_TRUE(inst->Process(Elem({Value("ba ce di")}), 0, 0.0, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].tuple.values[0].AsString(), "ba");
  EXPECT_EQ(out[0].tuple.values[1].AsInt(), 1);
  EXPECT_EQ(out[2].tuple.values[0].AsString(), "di");
}

TEST(AppUdosTest, SentimentScoreSumsLexicon) {
  auto inst = AppUdoInstance(AppId::kSentimentAnalysis, "sentiment");
  // Construct a text from words with known polarity.
  std::string pos_word, neg_word;
  for (int i = 0; i < 1000 && (pos_word.empty() || neg_word.empty()); ++i) {
    const std::string w = DictionaryWord(i);
    if (WordPolarity(w) == 1 && pos_word.empty()) pos_word = w;
    if (WordPolarity(w) == -1 && neg_word.empty()) neg_word = w;
  }
  ASSERT_FALSE(pos_word.empty());
  ASSERT_FALSE(neg_word.empty());
  std::vector<StreamElement> out;
  const std::string text = pos_word + " " + pos_word + " " + neg_word;
  ASSERT_TRUE(
      inst->Process(Elem({Value(200), Value(text)}), 0, 0.0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tuple.values[0].AsInt(), 200 % 128);  // user shard
  EXPECT_DOUBLE_EQ(out[0].tuple.values[1].AsDouble(), 1.0);
  EXPECT_EQ(out[0].tuple.values[2].AsInt(), 1);  // net positive
}

TEST(AppUdosTest, SpikeDetectorFiresOnSpikes) {
  auto inst = AppUdoInstance(AppId::kSpikeDetection, "spike_detect");
  std::vector<StreamElement> out;
  // Warm up with a steady signal, then spike.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        inst->Process(Elem({Value(7), Value(50.0)}), 0, 0.0, &out).ok());
  }
  EXPECT_TRUE(out.empty());  // steady signal: no spikes
  ASSERT_TRUE(
      inst->Process(Elem({Value(7), Value(90.0)}), 0, 0.0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].tuple.values[1].AsDouble(), 90.0);
  EXPECT_NEAR(out[0].tuple.values[2].AsDouble(), 50.0, 1e-9);
}

TEST(AppUdosTest, DedupPassesFirstOccurrenceOnly) {
  auto inst = AppUdoInstance(AppId::kClickAnalytics, "dedup");
  std::vector<StreamElement> out;
  ASSERT_TRUE(
      inst->Process(Elem({Value(1), Value("ba")}), 0, 0.0, &out).ok());
  ASSERT_TRUE(
      inst->Process(Elem({Value(1), Value("ba")}), 0, 0.0, &out).ok());
  ASSERT_TRUE(
      inst->Process(Elem({Value(2), Value("ba")}), 0, 0.0, &out).ok());
  ASSERT_EQ(out.size(), 2u);  // duplicate (1, ba) suppressed
  EXPECT_EQ(out[0].tuple.values[0].AsString(), "ba");
}

TEST(AppUdosTest, TollOnlyForCongestedSegments) {
  auto inst = AppUdoInstance(AppId::kLinearRoad, "toll");
  std::vector<StreamElement> out;
  // Segment free-flow thresholds derive from the segment id (30..70).
  const double threshold =
      30.0 + static_cast<double>(Value(12).Hash() % 41);
  // Window agg output shape: (segment, avg_speed).
  ASSERT_TRUE(inst->Process(Elem({Value(12), Value(threshold + 5.0)}), 0,
                            0.0, &out)
                  .ok());
  EXPECT_TRUE(out.empty());  // fast segment: no toll
  ASSERT_TRUE(inst->Process(Elem({Value(12), Value(threshold - 20.0)}), 0,
                            0.0, &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].tuple.values[1].AsDouble(),
                   2.0 * 20.0 * 20.0 / 100.0);
}

TEST(AppUdosTest, FraudScoreFlagsUnusualTransitions) {
  auto inst = AppUdoInstance(AppId::kFraudDetection, "fraud_score");
  std::vector<StreamElement> out;
  // Repeat the same location transition to make it "normal".
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(inst->Process(Elem({Value(9), Value(100.0), Value(3)}), 0,
                              0.0, &out).ok());
  }
  const size_t before = out.size();
  // A never-seen location transition must be flagged.
  ASSERT_TRUE(inst->Process(Elem({Value(9), Value(100.0), Value(47)}), 0,
                            0.0, &out).ok());
  EXPECT_EQ(out.size(), before + 1);
  EXPECT_LT(out.back().tuple.values[2].AsDouble(), 0.12);
}

TEST(AppUdosTest, TpchDiscPriceComputesDerivedColumn) {
  auto inst = AppUdoInstance(AppId::kTpcH, "disc_price");
  std::vector<StreamElement> out;
  ASSERT_TRUE(inst->Process(
      Elem({Value(1), Value(10.0), Value(1000.0), Value(0.1), Value(30)}), 0,
      0.0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].tuple.values[1].AsDouble(), 900.0);
}

TEST(AppUdosTest, MapMatchAssignsStableRoads) {
  auto inst = AppUdoInstance(AppId::kTrafficMonitoring, "map_match");
  std::vector<StreamElement> out;
  ASSERT_TRUE(inst->Process(
      Elem({Value(1), Value(48.5), Value(8.5), Value(80.0)}), 0, 0.0, &out)
          .ok());
  ASSERT_TRUE(inst->Process(
      Elem({Value(2), Value(48.5), Value(8.5), Value(60.0)}), 0, 0.0, &out)
          .ok());
  ASSERT_EQ(out.size(), 2u);
  // Same position -> same road id.
  EXPECT_EQ(out[0].tuple.values[0].AsInt(), out[1].tuple.values[0].AsInt());
  EXPECT_GE(out[0].tuple.values[0].AsInt(), 0);
}

}  // namespace
}  // namespace pdsp
