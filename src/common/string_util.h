// Small string helpers shared across modules (tokenization for the text
// applications, formatting for reporters).

#ifndef PDSP_COMMON_STRING_UTIL_H_
#define PDSP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pdsp {

/// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of whitespace; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Human-readable count, e.g. 1500 -> "1.5k", 2000000 -> "2m".
std::string HumanCount(double n);

}  // namespace pdsp

#endif  // PDSP_COMMON_STRING_UTIL_H_
