#include "src/sim/analytic.h"

#include <algorithm>
#include <cmath>

#include "src/query/cardinality.h"

namespace pdsp {

Result<AnalyticEstimate> EstimateLatencyAnalytically(
    const LogicalPlan& plan, const Cluster& cluster,
    const AnalyticOptions& options) {
  if (!plan.validated()) {
    return Status::FailedPrecondition("plan must be validated");
  }
  if (cluster.NumNodes() == 0) {
    return Status::InvalidArgument("empty cluster");
  }
  PDSP_ASSIGN_OR_RETURN(auto cards, CardinalityModel::Compute(plan));

  const double mean_speed = std::max(0.1, cluster.MeanSpeed());
  // Core contention when the plan oversubscribes the cluster.
  const double total_tasks = plan.TotalParallelism();
  const double contention =
      std::min(1.0, static_cast<double>(cluster.TotalCores()) / total_tasks);
  const double effective_speed = mean_speed * contention;

  AnalyticEstimate est;
  est.per_op.assign(plan.NumOperators(), {});

  // Latency accumulated along the path ending at each operator; joins take
  // the max over their inputs.
  std::vector<double> path_latency(plan.NumOperators(), 0.0);

  for (const LogicalPlan::OpId id : plan.TopologicalOrder()) {
    const OperatorDescriptor& op = plan.op(id);
    const OpCardinality& c = cards[id];
    AnalyticOpEstimate& o = est.per_op[id];

    const double rate =
        op.type == OperatorType::kSource ? c.output_rate : c.input_rate;
    const double rate_per_instance = rate / op.parallelism;

    // Service: per-batch framing plus per-tuple work, amortized per tuple.
    const double batch_tuples = std::max(1.0, options.batch_tuples);
    const double out_per_in = std::max(0.0, c.selectivity);
    const double per_tuple_cost =
        options.costs.InputTupleCost(op) +
        out_per_in * options.costs.OutputTupleCost(op, false) +
        options.costs.BatchCost(op) / batch_tuples;
    const double service_per_tuple = per_tuple_cost / effective_speed;
    o.service_s = service_per_tuple * batch_tuples;  // whole-batch service

    // Utilization and M/M/1 wait (batch-level).
    const double batch_arrival_rate = rate_per_instance / batch_tuples;
    o.utilization = batch_arrival_rate * o.service_s;
    est.max_utilization = std::max(est.max_utilization, o.utilization);
    if (o.utilization >= 1.0) {
      est.saturated = true;
      o.queue_wait_s =
          options.saturation_penalty_s * (o.utilization - 1.0 + 0.5);
    } else {
      o.queue_wait_s =
          o.service_s * o.utilization / (1.0 - o.utilization);
    }

    // Window residence (the dominant term under the paper's latency
    // definition): mean span/2 for the pane a result's earliest contributor
    // entered, plus half the slide until firing.
    if (op.type == OperatorType::kWindowAggregate) {
      if (op.window.policy == WindowPolicy::kTime) {
        o.window_residence_s =
            op.window.DurationSeconds() / 2.0 + op.window.SlideSeconds() / 2.0;
      } else {
        const double fill_rate = std::max(1e-9, rate_per_instance /
                                                    std::max(1.0,
                                                             c.distinct_keys));
        o.window_residence_s =
            static_cast<double>(op.window.length_tuples) / 2.0 / fill_rate;
      }
    } else if (op.type == OperatorType::kWindowJoin) {
      // A match waits for its partner: half the window on average.
      o.window_residence_s = op.window.policy == WindowPolicy::kTime
                                 ? op.window.DurationSeconds() / 2.0
                                 : 0.0;
    }

    // Network hop into this operator: link latency amortized over the
    // probability of a cross-node channel (all-but-one nodes are remote).
    if (op.type != OperatorType::kSource) {
      const double remote_fraction =
          cluster.NumNodes() > 1
              ? 1.0 - 1.0 / static_cast<double>(cluster.NumNodes())
              : 0.0;
      o.network_s =
          remote_fraction * cluster.LinkLatencySeconds(0, 1) +
          options.costs.local_handoff_latency;
    }

    // Source batching delay: tuples wait ~half a batch interval before the
    // batch ships (mirrors the simulator's source_batch_interval_s).
    const double batching_delay =
        op.type == OperatorType::kSource ? 0.0025 : 0.0;

    double upstream = 0.0;
    for (const LogicalPlan::OpId in : plan.Inputs(id)) {
      upstream = std::max(upstream, path_latency[in]);
    }
    path_latency[id] = upstream + o.queue_wait_s + o.service_s +
                       o.window_residence_s + o.network_s + batching_delay;
  }

  est.latency_s = path_latency[plan.SinkId()];
  return est;
}

}  // namespace pdsp
