#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/ml/linalg.h"
#include "src/ml/models.h"

namespace pdsp {

Result<TrainReport> LinearRegressionModel::Fit(const Dataset& train,
                                               const Dataset& val,
                                               const TrainOptions& options) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  const auto t0 = std::chrono::steady_clock::now();
  standardizer_ = Standardizer();
  standardizer_.Fit(train);

  const size_t d = train.samples[0].flat.size();
  Matrix xtx(d, d);
  Vector xty(d, 0.0);
  for (const PlanSample& s : train.samples) {
    const Vector x = standardizer_.Apply(s.flat);
    const double y = std::log(s.latency_s);
    for (size_t i = 0; i < d; ++i) {
      xty[i] += x[i] * y;
      for (size_t j = i; j < d; ++j) xtx.at(i, j) += x[i] * x[j];
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < i; ++j) xtx.at(i, j) = xtx.at(j, i);
  }
  PDSP_ASSIGN_OR_RETURN(
      weights_,
      CholeskySolve(std::move(xtx), std::move(xty),
                    options.ridge * static_cast<double>(train.size())));

  TrainReport report;
  report.epochs_run = 1;  // closed form
  double val_loss = 0.0;
  const Dataset& eval = val.empty() ? train : val;
  for (const PlanSample& s : eval.samples) {
    const double pred = Dot(weights_, standardizer_.Apply(s.flat));
    const double err = pred - std::log(s.latency_s);
    val_loss += err * err;
  }
  report.final_val_loss = val_loss / static_cast<double>(eval.size());
  report.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

Result<double> LinearRegressionModel::PredictLatency(
    const PlanSample& sample) const {
  if (weights_.empty()) return Status::FailedPrecondition("not fitted");
  if (sample.flat.size() != weights_.size()) {
    return Status::InvalidArgument("feature dimension mismatch");
  }
  const double log_latency = Dot(weights_, standardizer_.Apply(sample.flat));
  // Clamp to a sane range to keep q-errors finite on wild extrapolations.
  return std::exp(std::clamp(log_latency, -12.0, 12.0));
}

}  // namespace pdsp
