// Figure 3 (bottom): end-to-end latency of real-world applications across
// parallelism categories XS..XXL on the homogeneous 10-node m510 cluster.
//
// Expected shape (paper O1-O4): standard-operator apps (WC, LR) stay
// consistent; data-intensive UDO apps (SA, SG, SD) improve markedly with
// parallelism; AD (join + custom sliding aggregation) shows negligible
// gains; far beyond the core count every app pays coordination overhead.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/apps/apps.h"
#include "src/common/string_util.h"

namespace pdsp {

int Main(int argc, char** argv) {
  const bench::DriverSweepOptions opts = bench::ParseDriverOptions(argc, argv);
  // UDO factories must be registered before sweep workers spawn.
  RegisterAppUdos();
  const Cluster cluster = Cluster::M510(10);
  const RunProtocol protocol = bench::FigureProtocol();
  const double rate = bench::FastMode() ? 50000.0 : 200000.0;

  const std::vector<AppId> apps = {
      AppId::kWordCount,      AppId::kLinearRoad,
      AppId::kMachineOutlier, AppId::kSentimentAnalysis,
      AppId::kSmartGrid,      AppId::kSpikeDetection,
      AppId::kClickAnalytics, AppId::kAdAnalytics,
  };

  std::vector<std::string> columns = {"app"};
  for (const auto& cat : StandardCategories()) {
    columns.push_back(std::string(cat.name) + "(ms)");
  }
  TableReporter table(
      StrFormat("Fig. 3 (bottom): real-world app latency vs parallelism, "
                "m510 x10, %.0fk ev/s",
                rate / 1000.0),
      columns);

  std::vector<exec::SweepCell> cells;
  for (AppId app : apps) {
    for (const auto& cat : StandardCategories()) {
      exec::SweepCell cell;
      AppOptions opt;
      opt.event_rate = rate;
      opt.parallelism = cat.degree;
      // Windows scaled to fit several firings into the measured horizon
      // (LR's 5s sliding window would otherwise outlive the run).
      opt.window_scale = 0.4;
      cell.make_plan = [app, opt] { return MakeApp(app, opt); };
      cell.cluster = cluster;
      cell.protocol = protocol;
      cell.label =
          StrFormat("fig3rw/%s/%s", GetAppInfo(app).abbrev, cat.name);
      cells.push_back(std::move(cell));
    }
  }

  const exec::SweepResult sweep =
      bench::RunDriverSweep(std::move(cells), "fig3_realworld", opts);

  size_t idx = 0;
  for (AppId app : apps) {
    std::vector<std::string> row = {GetAppInfo(app).abbrev};
    for ([[maybe_unused]] const auto& cat : StandardCategories()) {
      row.push_back(bench::LatencyOrNa(sweep.cells[idx++]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  Status st = table.WriteCsv("results/fig3_realworld.csv");
  if (!st.ok()) std::fprintf(stderr, "csv: %s\n", st.ToString().c_str());
  return bench::SweepExitCode(sweep);
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
