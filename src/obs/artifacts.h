// Per-run observability artifact bundle: metrics.json (registry snapshot +
// run summary + the SimOptions/seed the run used), timeseries.csv
// (per-operator samples), trace.json (Chrome trace_event, open in Perfetto
// or chrome://tracing), diagnosis.json and host_profile.json, written under
// one directory — the layout the harness uses for results/<driver>/<cell>/.

#ifndef PDSP_OBS_ARTIFACTS_H_
#define PDSP_OBS_ARTIFACTS_H_

#include <string>

#include "src/common/status.h"
#include "src/obs/diagnose.h"
#include "src/obs/host_profile.h"
#include "src/obs/mem.h"
#include "src/obs/prof.h"
#include "src/obs/trace.h"
#include "src/sim/simulation.h"

namespace pdsp {
namespace obs {

/// Serializes the SimOptions a run used — including the RNG seed — so any
/// bundle (and any ledger record pointing at it) can be re-executed
/// bit-identically. The seed is a decimal string: uint64 seeds do not
/// survive the JSON number (double) round-trip.
Json SimOptionsJson(const SimOptions& options);

/// Serializes the run's headline numbers + registry into the metrics.json
/// document: {"summary": {...}, "operators": [...], "metrics":
/// {counters/gauges/histograms — histograms carry p50/p95/p99}}; with a
/// non-null `sim_options` also {"options": SimOptionsJson(...)}.
Json RunMetricsJson(const SimResult& result,
                    const SimOptions* sim_options = nullptr);

/// \brief Optional members of an artifact bundle (all non-owning).
struct ArtifactOptions {
  const Tracer* tracer = nullptr;          ///< trace.json
  const Diagnosis* diagnosis = nullptr;    ///< diagnosis.json
  const SimOptions* sim_options = nullptr; ///< metrics.json "options" block
  const HostProfile* host_profile = nullptr;  ///< host_profile.json
  const prof::CpuProfile* cpu_profile = nullptr;  ///< profile.json
  const mem::MemProfile* mem_profile = nullptr;   ///< memory.json
};

/// Writes metrics.json and, when non-empty, timeseries.csv under `dir`
/// (created if needed); each non-null ArtifactOptions member adds its file.
/// Every file is written to `<name>.tmp` first and renamed into place
/// (src/common/file_util), so readers never observe a half-written
/// artifact. Partial failures abort with the first error; already-renamed
/// files remain.
Status WriteRunArtifacts(const std::string& dir, const SimResult& result,
                         const ArtifactOptions& options);

/// Back-compat shorthand for the tracer/diagnosis-only bundle.
Status WriteRunArtifacts(const std::string& dir, const SimResult& result,
                         const Tracer* tracer,
                         const Diagnosis* diagnosis = nullptr);

}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_ARTIFACTS_H_
