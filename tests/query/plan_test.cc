#include "src/query/plan.h"

#include <gtest/gtest.h>

#include "src/query/builder.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

using testing::KeyValueStream;
using testing::LinearPlan;
using testing::PoissonArrival;
using testing::TwoWayJoinPlan;

TEST(WindowSpecTest, TumblingSlideEqualsDuration) {
  WindowSpec w;
  w.type = WindowType::kTumbling;
  w.duration_ms = 2000.0;
  w.length_tuples = 500;
  EXPECT_DOUBLE_EQ(w.DurationSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(w.SlideSeconds(), 2.0);
  EXPECT_EQ(w.SlideTuples(), 500);
  EXPECT_DOUBLE_EQ(w.OverlapFactor(), 1.0);
}

TEST(WindowSpecTest, SlidingSlideScalesByRatio) {
  WindowSpec w;
  w.type = WindowType::kSliding;
  w.duration_ms = 1000.0;
  w.length_tuples = 100;
  w.slide_ratio = 0.5;
  EXPECT_DOUBLE_EQ(w.SlideSeconds(), 0.5);
  EXPECT_EQ(w.SlideTuples(), 50);
  EXPECT_DOUBLE_EQ(w.OverlapFactor(), 2.0);
}

TEST(WindowSpecTest, SlideTuplesNeverZero) {
  WindowSpec w;
  w.type = WindowType::kSliding;
  w.length_tuples = 1;
  w.slide_ratio = 0.3;
  EXPECT_EQ(w.SlideTuples(), 1);
}

TEST(LogicalPlanTest, ValidLinearPlanPasses) {
  auto plan = LinearPlan();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->validated());
  EXPECT_EQ(plan->NumOperators(), 4u);
  EXPECT_EQ(plan->Depth(), 4);
  EXPECT_EQ(plan->TotalParallelism(), 7);  // 2+2+2 + sink(1)
}

TEST(LogicalPlanTest, TopologicalOrderRespectsEdges) {
  auto plan = TwoWayJoinPlan();
  ASSERT_TRUE(plan.ok());
  const auto& topo = plan->TopologicalOrder();
  std::vector<int> pos(plan->NumOperators());
  for (size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = static_cast<int>(i);
  for (const auto& [f, t] : plan->edges()) EXPECT_LT(pos[f], pos[t]);
}

TEST(LogicalPlanTest, DuplicateNameRejected) {
  LogicalPlan plan;
  OperatorDescriptor a;
  a.type = OperatorType::kSource;
  a.name = "x";
  ASSERT_TRUE(plan.AddOperator(a).ok());
  EXPECT_TRUE(plan.AddOperator(a).status().IsAlreadyExists());
}

TEST(LogicalPlanTest, EmptyNameRejected) {
  LogicalPlan plan;
  OperatorDescriptor a;
  EXPECT_TRUE(plan.AddOperator(a).status().IsInvalidArgument());
}

TEST(LogicalPlanTest, SelfEdgeRejected) {
  LogicalPlan plan;
  OperatorDescriptor a;
  a.name = "x";
  auto id = plan.AddOperator(a);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(plan.Connect(*id, *id).IsInvalidArgument());
}

TEST(LogicalPlanTest, EdgeOutOfRangeRejected) {
  LogicalPlan plan;
  EXPECT_TRUE(plan.Connect(0, 1).IsOutOfRange());
}

TEST(LogicalPlanTest, DuplicateEdgeRejected) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(10));
  auto m = b.Map("m", s);
  b.ConnectExtra(s, m);
  b.Sink("k", m);
  EXPECT_TRUE(b.Build().status().IsAlreadyExists());
}

TEST(LogicalPlanTest, CycleDetected) {
  LogicalPlan plan;
  SourceBinding binding{KeyValueStream(), PoissonArrival(10)};
  plan.AddSource(binding);
  OperatorDescriptor src;
  src.type = OperatorType::kSource;
  src.name = "s";
  OperatorDescriptor m1;
  m1.type = OperatorType::kMap;
  m1.name = "m1";
  OperatorDescriptor m2;
  m2.type = OperatorType::kMap;
  m2.name = "m2";
  OperatorDescriptor sink;
  sink.type = OperatorType::kSink;
  sink.name = "k";
  auto s = plan.AddOperator(src);
  auto a = plan.AddOperator(m1);
  auto c = plan.AddOperator(m2);
  auto k = plan.AddOperator(sink);
  ASSERT_TRUE(s.ok() && a.ok() && c.ok() && k.ok());
  ASSERT_TRUE(plan.Connect(*s, *a).ok());
  ASSERT_TRUE(plan.Connect(*a, *c).ok());
  ASSERT_TRUE(plan.Connect(*c, *a).ok());  // back edge
  ASSERT_TRUE(plan.Connect(*c, *k).ok());
  Status st = plan.Validate();
  EXPECT_FALSE(st.ok());
}

TEST(LogicalPlanTest, MissingSinkRejected) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(10));
  b.Map("m", s);
  auto plan = b.Build();
  EXPECT_FALSE(plan.ok());
}

TEST(LogicalPlanTest, JoinArityEnforced) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(10));
  WindowSpec win;
  OperatorDescriptor join;
  join.type = OperatorType::kWindowJoin;
  join.name = "j";
  join.window = win;
  // Build a join with one input via the raw plan API.
  LogicalPlan plan;
  plan.AddSource({KeyValueStream(), PoissonArrival(10)});
  OperatorDescriptor src;
  src.type = OperatorType::kSource;
  src.name = "s";
  OperatorDescriptor sink;
  sink.type = OperatorType::kSink;
  sink.name = "k";
  auto sid = plan.AddOperator(src);
  auto jid = plan.AddOperator(join);
  auto kid = plan.AddOperator(sink);
  ASSERT_TRUE(sid.ok() && jid.ok() && kid.ok());
  ASSERT_TRUE(plan.Connect(*sid, *jid).ok());
  ASSERT_TRUE(plan.Connect(*jid, *kid).ok());
  EXPECT_FALSE(plan.Validate().ok());
  (void)s;
}

TEST(LogicalPlanTest, ParallelismMustBePositive) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(10), 0);
  b.Sink("k", s);
  EXPECT_FALSE(b.Build().ok());
}

TEST(LogicalPlanTest, KeyedOperatorForcedToHashPartitioning) {
  auto plan = LinearPlan();
  ASSERT_TRUE(plan.ok());
  auto agg = plan->FindOperator("agg");
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(plan->op(*agg).input_partitioning, Partitioning::kHash);
}

TEST(LogicalPlanTest, FilterFieldOutOfRangeRejected) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(10));
  auto f = b.Filter("f", s, 99, FilterOp::kGt, Value(1));
  b.Sink("k", f);
  auto plan = b.Build();
  EXPECT_TRUE(plan.status().IsOutOfRange());
}

TEST(LogicalPlanTest, SchemaDerivationThroughAggregate) {
  auto plan = LinearPlan();
  ASSERT_TRUE(plan.ok());
  auto agg = plan->FindOperator("agg");
  ASSERT_TRUE(agg.ok());
  const Schema& s = plan->OutputSchema(*agg);
  ASSERT_EQ(s.NumFields(), 2u);  // key + agg
  EXPECT_EQ(s.field(0).name, "key");
  EXPECT_EQ(s.field(0).type, DataType::kInt);
  EXPECT_EQ(s.field(1).name, "agg");
  EXPECT_EQ(s.field(1).type, DataType::kDouble);
}

TEST(LogicalPlanTest, SchemaDerivationThroughJoin) {
  auto plan = TwoWayJoinPlan();
  ASSERT_TRUE(plan.ok());
  auto j = plan->FindOperator("join");
  ASSERT_TRUE(j.ok());
  const Schema& s = plan->OutputSchema(*j);
  ASSERT_EQ(s.NumFields(), 4u);  // l_key, l_val, r_key, r_val
  EXPECT_EQ(s.field(0).name, "l_key");
  EXPECT_EQ(s.field(2).name, "r_key");
}

TEST(LogicalPlanTest, SinkIdAndSourceIds) {
  auto plan = TwoWayJoinPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->op(plan->SinkId()).type, OperatorType::kSink);
  EXPECT_EQ(plan->SourceIds().size(), 2u);
}

TEST(LogicalPlanTest, FindOperatorByName) {
  auto plan = LinearPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->FindOperator("filter").ok());
  EXPECT_TRUE(plan->FindOperator("nope").status().IsNotFound());
}

TEST(LogicalPlanTest, ToStringMentionsAllOperators) {
  auto plan = LinearPlan();
  ASSERT_TRUE(plan.ok());
  std::string s = plan->ToString();
  for (const char* name : {"src", "filter", "agg", "sink"}) {
    EXPECT_NE(s.find(name), std::string::npos) << name;
  }
}

TEST(OperatorDescriptorTest, RequiresKeyedInput) {
  OperatorDescriptor agg;
  agg.type = OperatorType::kWindowAggregate;
  agg.key_field = 0;
  EXPECT_TRUE(agg.RequiresKeyedInput());
  agg.key_field = OperatorDescriptor::kNoKey;
  EXPECT_FALSE(agg.RequiresKeyedInput());

  OperatorDescriptor join;
  join.type = OperatorType::kWindowJoin;
  EXPECT_TRUE(join.RequiresKeyedInput());

  OperatorDescriptor udo;
  udo.type = OperatorType::kUdo;
  EXPECT_FALSE(udo.RequiresKeyedInput());
  udo.udo_stateful = true;
  EXPECT_TRUE(udo.RequiresKeyedInput());
}

// Regression: Connect() grows edges_ without changing ops_.size(), so a
// cached topological order of matching length can still be stale. Depth()
// must not trust it on an unvalidated plan.
TEST(LogicalPlanTest, DepthRecomputedAfterConnect) {
  LogicalPlan plan;
  SourceBinding binding{KeyValueStream(), PoissonArrival(10)};
  plan.AddSource(binding);
  OperatorDescriptor src;
  src.type = OperatorType::kSource;
  src.name = "s";
  OperatorDescriptor m2;
  m2.type = OperatorType::kMap;
  m2.name = "m2";
  OperatorDescriptor m1;
  m1.type = OperatorType::kMap;
  m1.name = "m1";
  OperatorDescriptor sink;
  sink.type = OperatorType::kSink;
  sink.name = "k";
  // Insertion order deliberately puts m2 before m1 so the cached topo
  // [s, m2, m1, k] disagrees with the post-Connect dependency m1 -> m2.
  auto s = plan.AddOperator(src);
  auto b = plan.AddOperator(m2);
  auto a = plan.AddOperator(m1);
  auto k = plan.AddOperator(sink);
  ASSERT_TRUE(s.ok() && a.ok() && b.ok() && k.ok());
  ASSERT_TRUE(plan.Connect(*s, *a).ok());
  ASSERT_TRUE(plan.Connect(*s, *b).ok());
  ASSERT_TRUE(plan.Connect(*a, *k).ok());
  ASSERT_TRUE(plan.Connect(*b, *k).ok());
  ASSERT_TRUE(plan.Validate().ok());
  EXPECT_EQ(plan.Depth(), 3);  // s -> m -> k

  // The extra edge leaves ops_.size() (and so a same-length cached topo)
  // unchanged; Depth() must still notice the plan is no longer validated.
  ASSERT_TRUE(plan.Connect(*a, *b).ok());  // now s -> m1 -> m2 -> k
  EXPECT_EQ(plan.Depth(), 4);
}

// Regression: a multi-input sink used to silently adopt its first input's
// schema, hiding mismatched unions.
TEST(LogicalPlanTest, SinkSchemaMismatchRejected) {
  LogicalPlan plan;
  SourceBinding binding{KeyValueStream(), PoissonArrival(10)};
  plan.AddSource(binding);
  OperatorDescriptor src;
  src.type = OperatorType::kSource;
  src.name = "s";
  OperatorDescriptor agg;
  agg.type = OperatorType::kWindowAggregate;
  agg.name = "agg";
  agg.key_field = 0;
  agg.agg_field = 1;
  OperatorDescriptor sink;
  sink.type = OperatorType::kSink;
  sink.name = "k";
  auto s = plan.AddOperator(src);
  auto a = plan.AddOperator(agg);
  auto k = plan.AddOperator(sink);
  ASSERT_TRUE(s.ok() && a.ok() && k.ok());
  ASSERT_TRUE(plan.Connect(*s, *a).ok());
  ASSERT_TRUE(plan.Connect(*s, *k).ok());  // (key, val)
  ASSERT_TRUE(plan.Connect(*a, *k).ok());  // (key, agg) — different schema
  Status st = plan.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("different"), std::string::npos)
      << st.ToString();
}

TEST(LogicalPlanTest, SinkWithMatchingMultiInputAccepted) {
  LogicalPlan plan;
  SourceBinding binding{KeyValueStream(), PoissonArrival(10)};
  plan.AddSource(binding);
  OperatorDescriptor src;
  src.type = OperatorType::kSource;
  src.name = "s";
  OperatorDescriptor map;
  map.type = OperatorType::kMap;
  map.name = "m";
  OperatorDescriptor sink;
  sink.type = OperatorType::kSink;
  sink.name = "k";
  auto s = plan.AddOperator(src);
  auto m = plan.AddOperator(map);
  auto k = plan.AddOperator(sink);
  ASSERT_TRUE(s.ok() && m.ok() && k.ok());
  ASSERT_TRUE(plan.Connect(*s, *m).ok());
  ASSERT_TRUE(plan.Connect(*s, *k).ok());
  ASSERT_TRUE(plan.Connect(*m, *k).ok());  // map preserves the schema
  EXPECT_TRUE(plan.Validate().ok());
}

// Regression: renames through mutable_op() used to leave the name index
// stale, so a re-Validate would miss duplicates and FindOperator would
// answer for names that no longer exist.
TEST(LogicalPlanTest, RenameViaMutableOpRevalidates) {
  auto plan = LinearPlan();
  ASSERT_TRUE(plan.ok());
  auto f = plan->FindOperator("filter");
  ASSERT_TRUE(f.ok());

  plan->mutable_op(*f)->name = "agg";  // now duplicates the aggregate
  EXPECT_FALSE(plan->validated());
  EXPECT_TRUE(plan->Validate().IsAlreadyExists());

  plan->mutable_op(*f)->name = "";
  EXPECT_TRUE(plan->Validate().IsInvalidArgument());

  plan->mutable_op(*f)->name = "renamed_filter";
  ASSERT_TRUE(plan->Validate().ok());
  EXPECT_TRUE(plan->FindOperator("renamed_filter").ok());
  EXPECT_TRUE(plan->FindOperator("filter").status().IsNotFound());
}

TEST(EnumStringsTest, AllEnumsHaveNames) {
  EXPECT_STREQ(OperatorTypeToString(OperatorType::kWindowJoin),
               "window_join");
  EXPECT_STREQ(FilterOpToString(FilterOp::kGe), ">=");
  EXPECT_STREQ(WindowTypeToString(WindowType::kSliding), "sliding");
  EXPECT_STREQ(WindowPolicyToString(WindowPolicy::kCount), "count");
  EXPECT_STREQ(AggregateFnToString(AggregateFn::kAvg), "avg");
  EXPECT_STREQ(PartitioningToString(Partitioning::kHash), "hash");
}

}  // namespace
}  // namespace pdsp
