#include "src/query/plan.h"

#include <algorithm>
#include <queue>

#include "src/common/string_util.h"

namespace pdsp {

const char* OperatorTypeToString(OperatorType type) {
  switch (type) {
    case OperatorType::kSource:
      return "source";
    case OperatorType::kFilter:
      return "filter";
    case OperatorType::kMap:
      return "map";
    case OperatorType::kFlatMap:
      return "flatmap";
    case OperatorType::kWindowAggregate:
      return "window_agg";
    case OperatorType::kWindowJoin:
      return "window_join";
    case OperatorType::kUdo:
      return "udo";
    case OperatorType::kSink:
      return "sink";
  }
  return "?";
}

const char* FilterOpToString(FilterOp op) {
  switch (op) {
    case FilterOp::kLt:
      return "<";
    case FilterOp::kLe:
      return "<=";
    case FilterOp::kGt:
      return ">";
    case FilterOp::kGe:
      return ">=";
    case FilterOp::kEq:
      return "==";
    case FilterOp::kNe:
      return "!=";
  }
  return "?";
}

const char* WindowTypeToString(WindowType type) {
  return type == WindowType::kTumbling ? "tumbling" : "sliding";
}

const char* WindowPolicyToString(WindowPolicy policy) {
  return policy == WindowPolicy::kTime ? "time" : "count";
}

const char* AggregateFnToString(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kMin:
      return "min";
    case AggregateFn::kMax:
      return "max";
    case AggregateFn::kAvg:
      return "avg";
    case AggregateFn::kMean:
      return "mean";
    case AggregateFn::kSum:
      return "sum";
  }
  return "?";
}

const char* PartitioningToString(Partitioning partitioning) {
  switch (partitioning) {
    case Partitioning::kForward:
      return "forward";
    case Partitioning::kRebalance:
      return "rebalance";
    case Partitioning::kHash:
      return "hash";
  }
  return "?";
}

double WindowSpec::SlideSeconds() const {
  if (type == WindowType::kTumbling) return DurationSeconds();
  return DurationSeconds() * slide_ratio;
}

int64_t WindowSpec::SlideTuples() const {
  if (type == WindowType::kTumbling) return length_tuples;
  return std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(length_tuples) *
                              slide_ratio));
}

double WindowSpec::OverlapFactor() const {
  if (type == WindowType::kTumbling) return 1.0;
  return slide_ratio > 0.0 ? 1.0 / slide_ratio : 1.0;
}

std::string WindowSpec::ToString() const {
  if (policy == WindowPolicy::kTime) {
    return StrFormat("%s/time %.0fms slide %.2f", WindowTypeToString(type),
                     duration_ms, type == WindowType::kSliding ? slide_ratio
                                                               : 1.0);
  }
  return StrFormat("%s/count %lld slide %.2f", WindowTypeToString(type),
                   static_cast<long long>(length_tuples),
                   type == WindowType::kSliding ? slide_ratio : 1.0);
}

bool OperatorDescriptor::RequiresKeyedInput() const {
  switch (type) {
    case OperatorType::kWindowAggregate:
      return key_field != kNoKey;
    case OperatorType::kWindowJoin:
      return true;
    case OperatorType::kUdo:
      return udo_stateful;
    default:
      return false;
  }
}

std::string OperatorDescriptor::ToString() const {
  std::string out = StrFormat("%s[%s] p=%d part=%s", name.c_str(),
                              OperatorTypeToString(type), parallelism,
                              PartitioningToString(input_partitioning));
  switch (type) {
    case OperatorType::kFilter:
      out += StrFormat(" f%zu %s %s", filter_field, FilterOpToString(filter_op),
                       filter_literal.ToString().c_str());
      break;
    case OperatorType::kWindowAggregate:
      out += StrFormat(" %s(f%zu) key=%s win={%s}",
                       AggregateFnToString(agg_fn), agg_field,
                       key_field == kNoKey ? "none"
                                           : StrFormat("f%zu", key_field).c_str(),
                       window.ToString().c_str());
      break;
    case OperatorType::kWindowJoin:
      out += StrFormat(" on l.f%zu==r.f%zu win={%s}", join_left_key,
                       join_right_key, window.ToString().c_str());
      break;
    case OperatorType::kUdo:
      out += StrFormat(" kind=%s cost=%.2f sel=%.2f%s", udo_kind.c_str(),
                       udo_cost_factor, udo_selectivity,
                       udo_stateful ? " stateful" : "");
      break;
    case OperatorType::kFlatMap:
      out += StrFormat(" fanout=%.2f", flatmap_fanout);
      break;
    default:
      break;
  }
  return out;
}

Result<LogicalPlan::OpId> LogicalPlan::AddOperator(OperatorDescriptor op) {
  if (op.name.empty()) return Status::InvalidArgument("operator needs a name");
  if (by_name_.count(op.name) != 0) {
    return Status::AlreadyExists("duplicate operator name '" + op.name + "'");
  }
  const OpId id = static_cast<OpId>(ops_.size());
  by_name_[op.name] = id;
  ops_.push_back(std::move(op));
  validated_ = false;
  return id;
}

Status LogicalPlan::Connect(OpId from, OpId to) {
  const auto n = static_cast<OpId>(ops_.size());
  if (from < 0 || from >= n || to < 0 || to >= n) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (from == to) return Status::InvalidArgument("self-edge");
  for (const auto& [f, t] : edges_) {
    if (f == from && t == to) {
      return Status::AlreadyExists("duplicate edge");
    }
  }
  edges_.emplace_back(from, to);
  validated_ = false;
  return Status::OK();
}

int LogicalPlan::AddSource(SourceBinding binding) {
  sources_.push_back(std::move(binding));
  validated_ = false;
  return static_cast<int>(sources_.size()) - 1;
}

std::vector<LogicalPlan::OpId> LogicalPlan::Inputs(OpId id) const {
  std::vector<OpId> in;
  for (const auto& [f, t] : edges_) {
    if (t == id) in.push_back(f);
  }
  return in;
}

std::vector<LogicalPlan::OpId> LogicalPlan::Outputs(OpId id) const {
  std::vector<OpId> out;
  for (const auto& [f, t] : edges_) {
    if (f == id) out.push_back(t);
  }
  return out;
}

std::vector<LogicalPlan::OpId> LogicalPlan::SourceIds() const {
  std::vector<OpId> ids;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].type == OperatorType::kSource) {
      ids.push_back(static_cast<OpId>(i));
    }
  }
  return ids;
}

Result<LogicalPlan::OpId> LogicalPlan::FindOperator(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no operator named '" + name + "'");
  }
  return it->second;
}

int LogicalPlan::TotalParallelism() const {
  int total = 0;
  for (const auto& op : ops_) total += op.parallelism;
  return total;
}

Status LogicalPlan::ComputeTopologicalOrder() {
  const size_t n = ops_.size();
  std::vector<int> in_degree(n, 0);
  for (const auto& [f, t] : edges_) {
    (void)f;
    ++in_degree[t];
  }
  std::queue<OpId> ready;
  for (size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) ready.push(static_cast<OpId>(i));
  }
  topo_.clear();
  while (!ready.empty()) {
    const OpId id = ready.front();
    ready.pop();
    topo_.push_back(id);
    for (const auto& [f, t] : edges_) {
      if (f == id && --in_degree[t] == 0) ready.push(t);
    }
  }
  if (topo_.size() != n) return Status::InvalidArgument("plan has a cycle");
  return Status::OK();
}

Status LogicalPlan::DeriveSchemas() {
  out_schemas_.assign(ops_.size(), Schema());
  for (const OpId id : topo_) {
    const OperatorDescriptor& op = ops_[id];
    const std::vector<OpId> in = Inputs(id);
    switch (op.type) {
      case OperatorType::kSource:
        out_schemas_[id] = sources_[op.source_index].stream.schema;
        break;
      case OperatorType::kFilter: {
        const Schema& s = out_schemas_[in[0]];
        if (op.filter_field >= s.NumFields()) {
          return Status::OutOfRange(StrFormat(
              "%s: filter field %zu out of range (schema has %zu fields)",
              op.name.c_str(), op.filter_field, s.NumFields()));
        }
        out_schemas_[id] = s;
        break;
      }
      case OperatorType::kMap:
      case OperatorType::kFlatMap:
        out_schemas_[id] = out_schemas_[in[0]];
        break;
      case OperatorType::kSink:
        // A multi-input sink merges streams; silently adopting the first
        // input's schema would hide a mismatched union.
        for (size_t k = 1; k < in.size(); ++k) {
          if (!(out_schemas_[in[k]] == out_schemas_[in[0]])) {
            return Status::InvalidArgument(StrFormat(
                "%s: sink inputs '%s' (%s) and '%s' (%s) have different "
                "schemas",
                op.name.c_str(), ops_[in[0]].name.c_str(),
                out_schemas_[in[0]].ToString().c_str(),
                ops_[in[k]].name.c_str(),
                out_schemas_[in[k]].ToString().c_str()));
          }
        }
        out_schemas_[id] = out_schemas_[in[0]];
        break;
      case OperatorType::kUdo:
        out_schemas_[id] = op.udo_output_fields.empty()
                               ? out_schemas_[in[0]]
                               : Schema(op.udo_output_fields);
        break;
      case OperatorType::kWindowAggregate: {
        const Schema& s = out_schemas_[in[0]];
        if (op.agg_field >= s.NumFields()) {
          return Status::OutOfRange(
              StrFormat("%s: aggregate field %zu out of range", op.name.c_str(),
                        op.agg_field));
        }
        if (op.key_field != OperatorDescriptor::kNoKey &&
            op.key_field >= s.NumFields()) {
          return Status::OutOfRange(StrFormat(
              "%s: key field %zu out of range", op.name.c_str(), op.key_field));
        }
        Schema out;
        if (op.key_field != OperatorDescriptor::kNoKey) {
          PDSP_RETURN_NOT_OK(
              out.AddField({"key", s.field(op.key_field).type}));
        }
        PDSP_RETURN_NOT_OK(out.AddField({"agg", DataType::kDouble}));
        out_schemas_[id] = std::move(out);
        break;
      }
      case OperatorType::kWindowJoin: {
        const Schema& l = out_schemas_[in[0]];
        const Schema& r = out_schemas_[in[1]];
        if (op.join_left_key >= l.NumFields() ||
            op.join_right_key >= r.NumFields()) {
          return Status::OutOfRange(
              StrFormat("%s: join key out of range", op.name.c_str()));
        }
        Schema out;
        for (size_t i = 0; i < l.NumFields(); ++i) {
          PDSP_RETURN_NOT_OK(
              out.AddField({"l_" + l.field(i).name, l.field(i).type}));
        }
        for (size_t i = 0; i < r.NumFields(); ++i) {
          PDSP_RETURN_NOT_OK(
              out.AddField({"r_" + r.field(i).name, r.field(i).type}));
        }
        out_schemas_[id] = std::move(out);
        break;
      }
    }
  }
  return Status::OK();
}

Status LogicalPlan::Validate() {
  if (ops_.empty()) return Status::InvalidArgument("empty plan");

  // mutable_op() may have renamed operators since the last validation;
  // rebuild the name index so FindOperator stays consistent and renames
  // cannot silently introduce duplicates.
  by_name_.clear();
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].name.empty()) {
      return Status::InvalidArgument(
          StrFormat("operator #%zu has an empty name", i));
    }
    if (!by_name_.emplace(ops_[i].name, static_cast<OpId>(i)).second) {
      return Status::AlreadyExists("duplicate operator name '" +
                                   ops_[i].name + "'");
    }
  }

  // Arity, parallelism and per-type structural checks.
  int sink_count = 0;
  for (size_t i = 0; i < ops_.size(); ++i) {
    OperatorDescriptor& op = ops_[i];
    const OpId id = static_cast<OpId>(i);
    const size_t fan_in = Inputs(id).size();
    const size_t fan_out = Outputs(id).size();
    if (op.parallelism < 1) {
      return Status::InvalidArgument(
          StrFormat("%s: parallelism %d < 1", op.name.c_str(),
                    op.parallelism));
    }
    switch (op.type) {
      case OperatorType::kSource:
        if (fan_in != 0) {
          return Status::InvalidArgument(op.name + ": source has inputs");
        }
        if (op.source_index < 0 ||
            op.source_index >= static_cast<int>(sources_.size())) {
          return Status::OutOfRange(op.name + ": source_index out of range");
        }
        break;
      case OperatorType::kSink:
        ++sink_count;
        if (fan_out != 0) {
          return Status::InvalidArgument(op.name + ": sink has outputs");
        }
        if (fan_in < 1) {
          return Status::InvalidArgument(op.name + ": sink has no input");
        }
        sink_id_ = id;
        break;
      case OperatorType::kWindowJoin:
        if (fan_in != 2) {
          return Status::InvalidArgument(
              StrFormat("%s: join needs exactly 2 inputs, has %zu",
                        op.name.c_str(), fan_in));
        }
        break;
      default:
        if (fan_in != 1) {
          return Status::InvalidArgument(
              StrFormat("%s: unary operator needs exactly 1 input, has %zu",
                        op.name.c_str(), fan_in));
        }
        break;
    }
    if (op.type != OperatorType::kSink && fan_out == 0) {
      return Status::InvalidArgument(op.name + ": dangling operator");
    }
    // Keyed operators must receive hash-partitioned input; auto-correct so
    // randomly generated plans stay valid.
    if (op.RequiresKeyedInput()) op.input_partitioning = Partitioning::kHash;
    // A source's "input partitioning" is meaningless; normalize to forward.
    if (op.type == OperatorType::kSource) {
      op.input_partitioning = Partitioning::kForward;
    }
  }
  if (sink_count != 1) {
    return Status::InvalidArgument(
        StrFormat("plan needs exactly 1 sink, has %d", sink_count));
  }

  PDSP_RETURN_NOT_OK(ComputeTopologicalOrder());

  // Reachability: every operator must lie on a source->sink path.
  const size_t n = ops_.size();
  std::vector<bool> from_source(n, false), to_sink(n, false);
  for (const OpId id : topo_) {
    if (ops_[id].type == OperatorType::kSource) from_source[id] = true;
    for (const OpId up : Inputs(id)) {
      if (from_source[up]) from_source[id] = true;
    }
  }
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    if (ops_[*it].type == OperatorType::kSink) to_sink[*it] = true;
    for (const OpId down : Outputs(*it)) {
      if (to_sink[down]) to_sink[*it] = true;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!from_source[i] || !to_sink[i]) {
      return Status::InvalidArgument(ops_[i].name +
                                     ": not on a source->sink path");
    }
  }

  PDSP_RETURN_NOT_OK(DeriveSchemas());
  validated_ = true;
  return Status::OK();
}

int LogicalPlan::Depth() const {
  std::vector<int> depth(ops_.size(), 1);
  int best = ops_.empty() ? 0 : 1;
  // Works on any acyclic plan; ordering by insertion is insufficient, so use
  // a simple longest-path DP over a locally computed topological order.
  // Connect() can grow edges_ without changing ops_.size(), so a cached
  // topo_ of matching length may still be stale — trust it only on a
  // validated plan.
  LogicalPlan* self = const_cast<LogicalPlan*>(this);
  if (!validated_ || topo_.size() != ops_.size()) {
    if (!self->ComputeTopologicalOrder().ok()) return 0;
  }
  for (const OpId id : topo_) {
    for (const OpId up : Inputs(id)) {
      depth[id] = std::max(depth[id], depth[up] + 1);
    }
    best = std::max(best, depth[id]);
  }
  return best;
}

std::string LogicalPlan::ToString() const {
  std::string out;
  for (size_t i = 0; i < ops_.size(); ++i) {
    out += StrFormat("#%zu ", i) + ops_[i].ToString();
    const auto downs = Outputs(static_cast<OpId>(i));
    if (!downs.empty()) {
      out += " ->";
      for (OpId d : downs) out += StrFormat(" #%d", d);
    }
    out += '\n';
  }
  return out;
}

}  // namespace pdsp
