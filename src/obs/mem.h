// pdsp::obs::mem — in-process sampling allocation profiler with no external
// dependencies. A PDSP_MEM_PROFILE-guarded translation unit (mem_hooks.cc)
// interposes global operator new/delete and forwards every allocation and
// free through NoteAlloc/NoteFree below; a per-thread exponential byte
// countdown decides which allocations become samples (default: one sample
// per 512 KiB allocated, so the hot path is one relaxed load, a branch and
// a thread-local decrement). Each sample carries the allocation-weighted
// byte interval it represents and is attributed to the calling thread's
// ProfScope marker stack (src/obs/prof.h) — yielding per-operator and
// per-kernel total-bytes, live-bytes, allocation counts, peak heap and,
// joined with the simulator's per-operator tuple counts, bytes per
// processed tuple.
//
// Telescoping invariant (validated in tests, mirrored from CpuProfile):
//   sum(folded.bytes) == total_bytes == sum(operators.total_bytes)
// where operators includes an "(untracked)" bucket for samples whose marker
// stack carried no operator frame. All sums are exact integer arithmetic.
//
// Concurrency contract:
//   * When no memory profiler is running, NoteAlloc/NoteFree cost one
//     relaxed atomic load and a branch — unprofiled runs pay (almost)
//     nothing even in a PDSP_MEM_PROFILE build, and builds without the
//     define pay literally nothing (the hooks TU compiles to empty).
//   * The sampled-allocation table (used to observe frees of sampled
//     allocations, possibly from other threads) is a fixed global array of
//     atomic slots with a claim protocol — the free path never takes a
//     mutex unless the freed pointer was actually sampled.
//   * The slow sampling path is reentrancy-guarded: allocations performed
//     by the profiler's own bookkeeping are never re-sampled, so the hooks
//     cannot recurse or self-deadlock.
//   * Interposition is compiled out under AddressSanitizer (ASan must own
//     malloc); MemProfiler::Start then logs a notice and stays inert.

#ifndef PDSP_OBS_MEM_H_
#define PDSP_OBS_MEM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/common/status.h"
#include "src/store/json.h"

namespace pdsp {
namespace obs {
namespace mem {

namespace detail {
/// Count of running MemProfilers; gates every hook.
extern std::atomic<int> active_mem_profilers;
/// Slow paths, defined in mem.cc. Never called unless a profiler is active.
void OnAlloc(void* ptr, std::size_t size) noexcept;
void OnFree(void* ptr) noexcept;
}  // namespace detail

/// True while at least one MemProfiler is running — the only state the
/// allocation hooks read before deciding to do nothing.
inline bool MemProfilingActive() {
  return detail::active_mem_profilers.load(std::memory_order_relaxed) > 0;
}

/// Called by the interposed operator new with every allocation. Must not
/// allocate on the fast path (it runs inside operator new).
inline void NoteAlloc(void* ptr, std::size_t size) noexcept {
  if (MemProfilingActive()) detail::OnAlloc(ptr, size);
}

/// Called by the interposed operator delete with every free.
inline void NoteFree(void* ptr) noexcept {
  if (MemProfilingActive()) detail::OnFree(ptr);
}

/// True when this binary was built with the PDSP_MEM_PROFILE interposition
/// TU (i.e. not under AddressSanitizer). When false, MemProfiler::Start
/// logs a notice and the session yields an empty profile.
bool InterpositionAvailable();

/// \brief Memory-profiler configuration (CLI: --mem-profile[=KiB]).
struct MemOptions {
  bool enabled = false;
  /// Mean bytes between samples (exponential skip, per thread); clamped to
  /// >= 1024 at Start. Smaller = more samples = more overhead.
  int64_t sample_interval_bytes = 512 * 1024;
  /// false: sample only allocations made by the thread that calls Start()
  /// — the right scope for per-cell profiles in a parallel sweep. true:
  /// sample every thread's allocations into this profiler.
  bool all_threads = false;
};

struct MemFolded {
  std::string stack;  ///< "phase:simulate;app:WC;op:count" ("" never occurs)
  int64_t samples = 0;
  int64_t bytes = 0;   ///< sampled-weighted bytes allocated under this stack
  int64_t allocs = 0;  ///< estimated allocation count (weight / size)
};

/// Per-operator (or per-kernel) allocation totals. `operators` rows join
/// the simulator's tuple counts to give bytes per processed tuple.
struct MemFrameTotal {
  std::string name;
  int64_t samples = 0;
  int64_t total_bytes = 0;  ///< cumulative sampled allocation bytes
  int64_t live_bytes = 0;   ///< sampled bytes not yet freed at Stop()
  int64_t allocs = 0;       ///< estimated allocation count
  int64_t tuples = 0;       ///< tuples processed (operators only; 0 = unknown)
  double bytes_per_tuple = 0.0;  ///< total_bytes / tuples, 0 when unknown
};

struct MemTimelinePoint {
  double t_s = 0.0;        ///< seconds since Start()
  int64_t live_bytes = 0;  ///< tracked live bytes at that instant
};

inline constexpr int kMemProfileSchemaVersion = 1;

/// \brief Aggregated result of one memory-profiling session. All byte
/// figures are sampled estimates: each sample's weight is the exact byte
/// interval it represents, so totals are unbiased and the telescoping sums
/// are exact in integer arithmetic.
struct MemProfile {
  int schema_version = kMemProfileSchemaVersion;
  int64_t sample_interval_bytes = 0;  ///< effective mean skip the run used
  double duration_s = 0.0;            ///< wall-clock Start..Stop
  int64_t samples = 0;                ///< sampled allocations
  int64_t dropped = 0;          ///< torn marker-stack reads (bytes kept)
  int64_t table_overflow = 0;   ///< samples whose free cannot be observed
  int64_t total_bytes = 0;      ///< weighted bytes allocated
  int64_t live_bytes = 0;       ///< weighted bytes still live at Stop()
  int64_t peak_heap_bytes = 0;  ///< max tracked live bytes over the run
  int64_t allocs_estimate = 0;  ///< estimated total allocation count
  int64_t frees = 0;            ///< sampled allocations seen freed
  int64_t freed_bytes = 0;      ///< weighted bytes of those frees
  int64_t tuples_processed = 0;  ///< total tuples (from NoteTuplesProcessed)
  double bytes_per_tuple = 0.0;  ///< total_bytes / tuples_processed
  std::vector<MemFolded> folded;        ///< sorted by stack string
  std::vector<MemFrameTotal> operators; ///< sorted by total_bytes desc, name
  std::vector<MemFrameTotal> kernels;   ///< sorted by total_bytes desc, name
  std::vector<MemTimelinePoint> timeline;  ///< live-bytes over wall time

  bool empty() const { return samples == 0; }

  Json ToJson() const;
  /// Rejects documents whose schema_version != kMemProfileSchemaVersion;
  /// otherwise lenient (missing keys read as empty/zero).
  static Result<MemProfile> FromJson(const Json& json);
};

/// Credits `tuples` processed tuples to operator `op_name` on the profiler
/// bound to the calling thread (no-op when none is). The simulator calls
/// this once per run with each operator's input-tuple total — off the
/// firing hot path — so MemProfile can report bytes per processed tuple.
void NoteTuplesProcessed(const std::string& op_name, int64_t tuples);

/// \brief Sampling allocation profiler. Start() arms the hooks for the
/// calling thread (or all threads); Stop() disarms them, sweeps the live
/// table and returns the aggregated MemProfile. The destructor stops a
/// still-running session and discards its result. Start/Stop must be
/// called from the same thread (the RunContext confinement contract).
///
/// Start() also activates the ProfScope marker machinery (prof::
/// ProfilingActive()), so operator markers are maintained even when no CPU
/// sampler runs alongside.
class MemProfiler {
 public:
  explicit MemProfiler(const MemOptions& options);
  ~MemProfiler();

  MemProfiler(const MemProfiler&) = delete;
  MemProfiler& operator=(const MemProfiler&) = delete;

  /// Arms the hooks. With all_threads=false the calling thread must already
  /// be registered (prof::ThreadRegistration) so samples can read its
  /// marker stack. FailedPrecondition when already running or unregistered.
  /// OK but inert (with a logged notice) when interposition is compiled
  /// out — a sweep never dies on its observability.
  Status Start();

  /// Disarms, aggregates and returns the profile. Returns an empty profile
  /// when Start was never (successfully) called or interposition is absent.
  MemProfile Stop();

  bool running() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Appends PDSP-M301 (allocation-dominated operator), PDSP-M302 (heap
/// growth without tuple growth, i.e. retention) and PDSP-M303 (peak heap
/// exceeds a cluster node's memory) findings derived from `profile` into
/// `report`. `node_memory_gb` is the per-node memory budget the M303 check
/// compares against (<= 0 disables it). No-op for empty profiles.
void DiagnoseMemProfile(const MemProfile& profile, double node_memory_gb,
                        analysis::AnalysisReport* report);

/// Slots currently occupied in the global sampled-allocation table. After
/// every profiler has stopped this must be 0 (Stop() sweeps its own slots)
/// — asserted in tests to prove the table cannot leak across runs.
int64_t LiveTableSlotsInUse();

}  // namespace mem
}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_MEM_H_
