#include "src/common/status.h"

namespace pdsp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace pdsp
