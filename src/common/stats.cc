#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pdsp {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / count_;
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const int64_t n = count_ + other.count_;
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(count_) * other.count_ / n;
  mean_ += delta * other.count_ / n;
  count_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LatencyRecorder::LatencyRecorder(size_t reservoir_capacity)
    : capacity_(reservoir_capacity), rng_state_(0x853c49e6748fea9bULL) {}

void LatencyRecorder::Record(double value) {
  running_.Add(value);
  ++seen_;
  sorted_valid_ = false;
  if (capacity_ == 0 || samples_.size() < capacity_) {
    samples_.push_back(value);
    return;
  }
  // Vitter's Algorithm R: replace a uniformly random slot with prob cap/seen.
  rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
  const uint64_t r = (rng_state_ >> 16) % static_cast<uint64_t>(seen_);
  if (r < capacity_) samples_[static_cast<size_t>(r)] = value;
}

double LatencyRecorder::Percentile(double pct) const {
  if (samples_.empty() || std::isnan(pct)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  const double p = std::clamp(pct, 0.0, 100.0) / 100.0;
  const double idx = p * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string LatencyRecorder::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.3f p50=%.3f p95=%.3f p99=%.3f min=%.3f "
                "max=%.3f",
                static_cast<long long>(Count()), Mean(), Percentile(50.0),
                Percentile(95.0), Percentile(99.0), Min(), Max());
  return buf;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {}

void Histogram::Add(double x) {
  ++total_;
  if (counts_.empty()) return;
  double pos = (x - lo_) / width_;
  auto idx = static_cast<int64_t>(std::floor(pos));
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
}

double Histogram::BucketLow(size_t i) const { return lo_ + width_ * i; }
double Histogram::BucketHigh(size_t i) const { return lo_ + width_ * (i + 1); }

std::string Histogram::ToString(size_t max_bar_width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[128];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar = static_cast<size_t>(
        static_cast<double>(counts_[i]) / peak * max_bar_width);
    std::snprintf(buf, sizeof(buf), "[%10.3f, %10.3f) %8lld ",
                  BucketLow(i), BucketHigh(i),
                  static_cast<long long>(counts_[i]));
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

ExpHistogram::ExpHistogram(double lo, double hi, double base)
    : lo_(lo > 0.0 ? lo : 1e-6),
      hi_(hi > lo_ ? hi : lo_ * 2.0),
      base_(base > 1.0 ? base : 1.5),
      inv_log_base_(1.0 / std::log(base_)) {
  // Underflow bucket + enough exponential buckets to reach hi_ (the last one
  // also absorbs the overflow).
  const auto spans = static_cast<size_t>(
      std::ceil(std::log(hi_ / lo_) * inv_log_base_));
  counts_.assign(spans + 1, 0);
}

size_t ExpHistogram::BucketIndex(double x) const {
  if (!(x >= lo_)) return 0;  // underflow; NaN also lands here
  const auto i = static_cast<int64_t>(
      std::floor(std::log(x / lo_) * inv_log_base_)) + 1;
  return static_cast<size_t>(
      std::clamp<int64_t>(i, 1, static_cast<int64_t>(counts_.size()) - 1));
}

void ExpHistogram::Add(double x) {
  ++total_;
  stats_.Add(x);
  ++counts_[BucketIndex(x)];
}

void ExpHistogram::Merge(const ExpHistogram& other) {
  if (other.total_ == 0) return;
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.base_ != base_) {
    return;  // incompatible geometry; silently ignored (see header)
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  stats_.Merge(other.stats_);
}

double ExpHistogram::BucketLow(size_t i) const {
  if (i == 0) return 0.0;
  return lo_ * std::pow(base_, static_cast<double>(i - 1));
}

double ExpHistogram::BucketHigh(size_t i) const {
  return lo_ * std::pow(base_, static_cast<double>(i));
}

double ExpHistogram::Percentile(double pct) const {
  if (total_ == 0 || std::isnan(pct)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double target =
      std::clamp(pct, 0.0, 100.0) / 100.0 * static_cast<double>(total_);
  int64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int64_t next = cum + counts_[i];
    if (static_cast<double>(next) >= target) {
      // Linear interpolation inside the bucket, clamped to observed extremes.
      const double frac =
          (target - static_cast<double>(cum)) / counts_[i];
      const double lo = std::max(BucketLow(i), stats_.min());
      const double hi = std::min(BucketHigh(i), stats_.max());
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum = next;
  }
  return stats_.max();
}

std::string ExpHistogram::ToString(size_t max_bar_width) const {
  size_t first = counts_.size();
  size_t last = 0;
  int64_t peak = 1;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    first = std::min(first, i);
    last = std::max(last, i);
    peak = std::max(peak, counts_[i]);
  }
  if (first > last) return "(empty)\n";
  std::string out;
  char buf[128];
  for (size_t i = first; i <= last; ++i) {
    const size_t bar = static_cast<size_t>(
        static_cast<double>(counts_[i]) / peak * max_bar_width);
    std::snprintf(buf, sizeof(buf), "[%12.6g, %12.6g) %8lld ", BucketLow(i),
                  BucketHigh(i), static_cast<long long>(counts_[i]));
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Percentile(std::vector<double> xs, double pct) {
  if (xs.empty() || std::isnan(pct)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  std::sort(xs.begin(), xs.end());
  const double p = std::clamp(pct, 0.0, 100.0) / 100.0;
  const double idx = p * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double GeometricMean(const std::vector<double>& xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return std::numeric_limits<double>::quiet_NaN();
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace pdsp
