// Learned cost model workflow (the paper's Exp. 3 pipeline in miniature):
// generate a labeled corpus with the workload generator + simulator, train
// the GNN cost model, then predict the latency of an unseen query and check
// the prediction against an actual run.
//
//   ./build/examples/cost_model_training

#include <cstdio>

#include "src/ml/datagen.h"
#include "src/ml/metrics.h"
#include "src/ml/trainer.h"

using namespace pdsp;  // NOLINT — example brevity

int main() {
  const Cluster cluster = Cluster::M510(10);

  // 1. Generate a training corpus: 80 synthetic queries, labeled by the
  //    simulator's measured median latency.
  DataGenOptions gen;
  gen.num_samples = 80;
  gen.seed = 31;
  gen.query.rate_floor = 1000.0;
  gen.query.rate_cap = 50000.0;
  gen.query.count_policy_probability = 0.0;
  gen.query.window_durations_ms = {250, 500, 1000};
  gen.query.max_keys = 1000;
  gen.strategy = EnumerationStrategy::kRuleBased;
  gen.enumeration.rule_jitter = 2;
  gen.enumeration.max_degree = 16;
  gen.execution.sim.duration_s = 2.0;
  gen.execution.sim.warmup_s = 0.5;
  std::printf("collecting %d labeled queries...\n", gen.num_samples);
  auto corpus = GenerateTrainingData(gen, cluster);
  if (!corpus.ok()) {
    std::fprintf(stderr, "datagen: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  std::printf("corpus ready: %zu samples, %.1fs of simulation\n\n",
              corpus->dataset.size(), corpus->collection_seconds);

  // 2. Train the GNN with validation-based early stopping.
  auto split = SplitDataset(corpus->dataset, 0.7, 0.15, 5);
  if (!split.ok()) return 1;
  auto gnn = MakeModel(ModelKind::kGnn);
  TrainOptions train;
  train.max_epochs = 150;
  train.patience = 12;
  auto eval = TrainAndEvaluate(gnn.get(), *split, train);
  if (!eval.ok()) {
    std::fprintf(stderr, "training: %s\n", eval.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %s in %.2fs (%d epochs%s)\n", eval->model_name.c_str(),
              eval->train_report.train_seconds,
              eval->train_report.epochs_run,
              eval->train_report.early_stopped ? ", early-stopped" : "");
  std::printf("held-out accuracy: %s\n\n",
              eval->test_metrics.ToString().c_str());

  // 3. Predict a brand-new query's latency BEFORE running it.
  QueryGenOptions qopt = gen.query;
  qopt.fixed_event_rate = 20000.0;
  qopt.default_parallelism = 8;
  QueryGenerator generator(qopt, 777);
  auto candidate = generator.Generate(SyntheticStructure::kTwoWayJoin);
  if (!candidate.ok()) return 1;
  auto sample = EncodeSample(*candidate, cluster, /*latency placeholder*/ 1.0,
                             0);
  if (!sample.ok()) return 1;
  auto predicted = gnn->PredictLatency(*sample);
  if (!predicted.ok()) return 1;

  ExecutionOptions exec = gen.execution;
  exec.sim.duration_s = 3.0;
  auto actual = ExecutePlan(*candidate, cluster, exec);
  if (!actual.ok()) return 1;

  std::printf("new 2-way-join query at 20k ev/s, parallelism 8:\n");
  std::printf("  GNN predicted latency: %8.1f ms\n", *predicted * 1e3);
  std::printf("  simulator measured:    %8.1f ms\n",
              actual->median_latency_s * 1e3);
  std::printf("  q-error:               %8.2f\n",
              QError(actual->median_latency_s, *predicted));
  return 0;
}
