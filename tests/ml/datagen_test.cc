#include "src/ml/datagen.h"

#include <gtest/gtest.h>

#include "src/ml/metrics.h"
#include "src/ml/trainer.h"

namespace pdsp {
namespace {

DataGenOptions FastOptions(int samples, uint64_t seed = 99) {
  DataGenOptions opt;
  opt.num_samples = samples;
  opt.seed = seed;
  opt.query.fixed_event_rate = 5000.0;
  opt.query.count_policy_probability = 0.0;
  opt.query.window_durations_ms = {250, 500, 1000};
  opt.query.max_keys = 500;
  opt.enumeration.max_degree = 8;
  opt.execution.sim.duration_s = 2.0;
  opt.execution.sim.warmup_s = 0.5;
  return opt;
}

TEST(DataGenTest, ProducesRequestedSamples) {
  auto r = GenerateTrainingData(FastOptions(12), Cluster::M510(4));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->dataset.size(), 12u);
  EXPECT_GT(r->collection_seconds, 0.0);
  for (const PlanSample& s : r->dataset.samples) {
    EXPECT_GT(s.latency_s, 0.0);
    EXPECT_EQ(s.flat.size(), kFlatFeatureDim);
    EXPECT_FALSE(s.graph.node_features.empty());
  }
}

TEST(DataGenTest, RejectsBadCount) {
  DataGenOptions opt = FastOptions(0);
  EXPECT_FALSE(GenerateTrainingData(opt, Cluster::M510(2)).ok());
}

TEST(DataGenTest, DeterministicForSeed) {
  auto a = GenerateTrainingData(FastOptions(6, 7), Cluster::M510(4));
  auto b = GenerateTrainingData(FastOptions(6, 7), Cluster::M510(4));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->dataset.size(), b->dataset.size());
  for (size_t i = 0; i < a->dataset.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->dataset.samples[i].latency_s,
                     b->dataset.samples[i].latency_s);
  }
}

TEST(DataGenTest, ParallelJobsProduceTheSequentialCorpus) {
  // Wave-parallel simulation must not change the attempt sequence, the
  // discard decisions, or any sample: jobs only divides wall-clock time.
  DataGenOptions seq = FastOptions(8, 21);
  DataGenOptions par = FastOptions(8, 21);
  par.jobs = 4;
  auto a = GenerateTrainingData(seq, Cluster::M510(4));
  auto b = GenerateTrainingData(par, Cluster::M510(4));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->dataset.size(), b->dataset.size());
  EXPECT_EQ(a->discarded, b->discarded);
  for (size_t i = 0; i < a->dataset.size(); ++i) {
    const PlanSample& sa = a->dataset.samples[i];
    const PlanSample& sb = b->dataset.samples[i];
    EXPECT_EQ(sa.latency_s, sb.latency_s);  // bit-identical, not approx
    EXPECT_EQ(sa.structure_tag, sb.structure_tag);
    EXPECT_EQ(sa.flat, sb.flat);
  }
}

TEST(DataGenTest, RestrictedStructuresAreHonored) {
  DataGenOptions opt = FastOptions(8);
  opt.structures = {SyntheticStructure::kLinear,
                    SyntheticStructure::kChain2Filters};
  auto r = GenerateTrainingData(opt, Cluster::M510(4));
  ASSERT_TRUE(r.ok());
  for (const PlanSample& s : r->dataset.samples) {
    EXPECT_TRUE(s.structure_tag ==
                    static_cast<int>(SyntheticStructure::kLinear) ||
                s.structure_tag ==
                    static_cast<int>(SyntheticStructure::kChain2Filters));
  }
}

TEST(DataGenTest, StrategiesProduceDifferentCorpora) {
  DataGenOptions random_opt = FastOptions(8);
  random_opt.strategy = EnumerationStrategy::kRandom;
  DataGenOptions rule_opt = FastOptions(8);
  rule_opt.strategy = EnumerationStrategy::kRuleBased;
  auto random_data = GenerateTrainingData(random_opt, Cluster::M510(4));
  auto rule_data = GenerateTrainingData(rule_opt, Cluster::M510(4));
  ASSERT_TRUE(random_data.ok() && rule_data.ok());
  // Same seeds, same queries — different parallelism assignments must give
  // different labels somewhere.
  bool any_diff = false;
  const size_t n =
      std::min(random_data->dataset.size(), rule_data->dataset.size());
  for (size_t i = 0; i < n; ++i) {
    any_diff |= random_data->dataset.samples[i].latency_s !=
                rule_data->dataset.samples[i].latency_s;
  }
  EXPECT_TRUE(any_diff);
}

// End-to-end: generate a real corpus from the simulator and check that the
// learned models actually predict simulated latencies (the Exp. 3 pipeline).
TEST(DataGenTest, ModelsLearnSimulatedLatencies) {
  DataGenOptions opt = FastOptions(60, 41);
  opt.structures = {SyntheticStructure::kLinear,
                    SyntheticStructure::kChain2Filters,
                    SyntheticStructure::kTwoWayJoin};
  auto corpus = GenerateTrainingData(opt, Cluster::M510(4));
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  ASSERT_GE(corpus->dataset.size(), 40u);
  auto split = SplitDataset(corpus->dataset, 0.7, 0.15, 3);
  ASSERT_TRUE(split.ok());

  TrainOptions train;
  train.max_epochs = 120;
  train.patience = 12;
  for (ModelKind kind : {ModelKind::kLinearRegression, ModelKind::kGnn}) {
    auto model = MakeModel(kind);
    auto eval = TrainAndEvaluate(model.get(), *split, train);
    ASSERT_TRUE(eval.ok()) << model->name() << ": "
                           << eval.status().ToString();
    // Usable accuracy on held-out simulated queries.
    EXPECT_LT(eval->test_metrics.median_q, 4.0) << model->name();
  }
}

}  // namespace
}  // namespace pdsp
