#include "src/store/plan_serde.h"

#include <cmath>

#include "src/common/string_util.h"

namespace pdsp {

namespace {

// --- enum <-> string tables (stable storage names) ---

template <typename E>
struct EnumEntry {
  E value;
  const char* name;
};

const EnumEntry<OperatorType> kOperatorTypes[] = {
    {OperatorType::kSource, "source"},
    {OperatorType::kFilter, "filter"},
    {OperatorType::kMap, "map"},
    {OperatorType::kFlatMap, "flatmap"},
    {OperatorType::kWindowAggregate, "window_agg"},
    {OperatorType::kWindowJoin, "window_join"},
    {OperatorType::kUdo, "udo"},
    {OperatorType::kSink, "sink"},
};

const EnumEntry<FilterOp> kFilterOps[] = {
    {FilterOp::kLt, "lt"}, {FilterOp::kLe, "le"}, {FilterOp::kGt, "gt"},
    {FilterOp::kGe, "ge"}, {FilterOp::kEq, "eq"}, {FilterOp::kNe, "ne"},
};

const EnumEntry<WindowType> kWindowTypes[] = {
    {WindowType::kTumbling, "tumbling"},
    {WindowType::kSliding, "sliding"},
};

const EnumEntry<WindowPolicy> kWindowPolicies[] = {
    {WindowPolicy::kTime, "time"},
    {WindowPolicy::kCount, "count"},
};

const EnumEntry<AggregateFn> kAggregateFns[] = {
    {AggregateFn::kMin, "min"}, {AggregateFn::kMax, "max"},
    {AggregateFn::kAvg, "avg"}, {AggregateFn::kMean, "mean"},
    {AggregateFn::kSum, "sum"},
};

const EnumEntry<Partitioning> kPartitionings[] = {
    {Partitioning::kForward, "forward"},
    {Partitioning::kRebalance, "rebalance"},
    {Partitioning::kHash, "hash"},
};

const EnumEntry<DataType> kDataTypes[] = {
    {DataType::kInt, "int"},
    {DataType::kDouble, "double"},
    {DataType::kString, "string"},
};

const EnumEntry<FieldDistribution> kDistributions[] = {
    {FieldDistribution::kUniformInt, "uniform_int"},
    {FieldDistribution::kUniformDouble, "uniform_double"},
    {FieldDistribution::kNormalDouble, "normal_double"},
    {FieldDistribution::kZipfKey, "zipf_key"},
    {FieldDistribution::kUniformKey, "uniform_key"},
    {FieldDistribution::kWordString, "word_string"},
    {FieldDistribution::kSequence, "sequence"},
    {FieldDistribution::kSentence, "sentence"},
};

const EnumEntry<ArrivalKind> kArrivalKinds[] = {
    {ArrivalKind::kPoisson, "poisson"},
    {ArrivalKind::kConstant, "constant"},
    {ArrivalKind::kBursty, "bursty"},
};

template <typename E, size_t N>
const char* EnumName(const EnumEntry<E> (&table)[N], E value) {
  for (const auto& entry : table) {
    if (entry.value == value) return entry.name;
  }
  return "?";
}

template <typename E, size_t N>
Result<E> EnumFromName(const EnumEntry<E> (&table)[N],
                       const std::string& name, const char* what) {
  for (const auto& entry : table) {
    if (name == entry.name) return entry.value;
  }
  return Status::InvalidArgument(StrFormat("unknown %s '%s'", what,
                                           name.c_str()));
}

}  // namespace

Json ValueToJson(const Value& value) {
  Json j = Json::Object();
  switch (value.type()) {
    case DataType::kInt:
      j.Set("t", Json::Str("int"));
      j.Set("v", Json::Int(value.AsInt()));
      break;
    case DataType::kDouble:
      j.Set("t", Json::Str("double"));
      j.Set("v", Json::Number(value.AsDouble()));
      break;
    case DataType::kString:
      j.Set("t", Json::Str("string"));
      j.Set("v", Json::Str(value.AsString()));
      break;
  }
  return j;
}

Result<Value> ValueFromJson(const Json& json) {
  PDSP_ASSIGN_OR_RETURN(std::string type, json.GetString("t"));
  if (type == "int") {
    PDSP_ASSIGN_OR_RETURN(int64_t v, json.GetInt("v"));
    return Value(v);
  }
  if (type == "double") {
    PDSP_ASSIGN_OR_RETURN(double v, json.GetNumber("v"));
    return Value(v);
  }
  if (type == "string") {
    PDSP_ASSIGN_OR_RETURN(std::string v, json.GetString("v"));
    return Value(std::move(v));
  }
  return Status::InvalidArgument("unknown value type '" + type + "'");
}

namespace {

Json WindowToJson(const WindowSpec& w) {
  Json j = Json::Object();
  j.Set("type", Json::Str(EnumName(kWindowTypes, w.type)));
  j.Set("policy", Json::Str(EnumName(kWindowPolicies, w.policy)));
  j.Set("duration_ms", Json::Number(w.duration_ms));
  j.Set("length_tuples", Json::Int(w.length_tuples));
  j.Set("slide_ratio", Json::Number(w.slide_ratio));
  return j;
}

Result<WindowSpec> WindowFromJson(const Json& j) {
  WindowSpec w;
  PDSP_ASSIGN_OR_RETURN(std::string type, j.GetString("type"));
  PDSP_ASSIGN_OR_RETURN(w.type,
                        EnumFromName(kWindowTypes, type, "window type"));
  PDSP_ASSIGN_OR_RETURN(std::string policy, j.GetString("policy"));
  PDSP_ASSIGN_OR_RETURN(
      w.policy, EnumFromName(kWindowPolicies, policy, "window policy"));
  PDSP_ASSIGN_OR_RETURN(w.duration_ms, j.GetNumber("duration_ms"));
  PDSP_ASSIGN_OR_RETURN(w.length_tuples, j.GetInt("length_tuples"));
  PDSP_ASSIGN_OR_RETURN(w.slide_ratio, j.GetNumber("slide_ratio"));
  return w;
}

Json FieldSpecToJson(const Field& field, const FieldGeneratorSpec& gen) {
  Json j = Json::Object();
  j.Set("name", Json::Str(field.name));
  j.Set("type", Json::Str(EnumName(kDataTypes, field.type)));
  j.Set("dist", Json::Str(EnumName(kDistributions, gen.dist)));
  j.Set("min", Json::Number(gen.min));
  j.Set("max", Json::Number(gen.max));
  j.Set("cardinality", Json::Int(gen.cardinality));
  j.Set("zipf_s", Json::Number(gen.zipf_s));
  return j;
}

Json SourceToJson(const SourceBinding& src) {
  Json j = Json::Object();
  Json fields = Json::Array();
  for (size_t i = 0; i < src.stream.schema.NumFields(); ++i) {
    fields.Append(
        FieldSpecToJson(src.stream.schema.field(i), src.stream.specs[i]));
  }
  j.Set("fields", std::move(fields));
  Json arrival = Json::Object();
  arrival.Set("kind", Json::Str(EnumName(kArrivalKinds, src.arrival.kind)));
  arrival.Set("rate", Json::Number(src.arrival.rate));
  arrival.Set("peak_factor", Json::Number(src.arrival.peak_factor));
  arrival.Set("burst_period", Json::Number(src.arrival.burst_period));
  arrival.Set("duty_cycle", Json::Number(src.arrival.duty_cycle));
  j.Set("arrival", std::move(arrival));
  return j;
}

Result<SourceBinding> SourceFromJson(const Json& j) {
  SourceBinding src;
  const Json& fields = j["fields"];
  if (!fields.is_array()) return Status::InvalidArgument("missing fields");
  for (size_t i = 0; i < fields.size(); ++i) {
    const Json& f = fields.at(i);
    Field field;
    PDSP_ASSIGN_OR_RETURN(field.name, f.GetString("name"));
    PDSP_ASSIGN_OR_RETURN(std::string type, f.GetString("type"));
    PDSP_ASSIGN_OR_RETURN(field.type,
                          EnumFromName(kDataTypes, type, "data type"));
    PDSP_RETURN_NOT_OK(src.stream.schema.AddField(field));
    FieldGeneratorSpec gen;
    PDSP_ASSIGN_OR_RETURN(std::string dist, f.GetString("dist"));
    PDSP_ASSIGN_OR_RETURN(gen.dist,
                          EnumFromName(kDistributions, dist, "distribution"));
    PDSP_ASSIGN_OR_RETURN(gen.min, f.GetNumber("min"));
    PDSP_ASSIGN_OR_RETURN(gen.max, f.GetNumber("max"));
    PDSP_ASSIGN_OR_RETURN(gen.cardinality, f.GetInt("cardinality"));
    PDSP_ASSIGN_OR_RETURN(gen.zipf_s, f.GetNumber("zipf_s"));
    src.stream.specs.push_back(gen);
  }
  const Json& arrival = j["arrival"];
  PDSP_ASSIGN_OR_RETURN(std::string kind, arrival.GetString("kind"));
  PDSP_ASSIGN_OR_RETURN(src.arrival.kind,
                        EnumFromName(kArrivalKinds, kind, "arrival kind"));
  PDSP_ASSIGN_OR_RETURN(src.arrival.rate, arrival.GetNumber("rate"));
  PDSP_ASSIGN_OR_RETURN(src.arrival.peak_factor,
                        arrival.GetNumber("peak_factor"));
  PDSP_ASSIGN_OR_RETURN(src.arrival.burst_period,
                        arrival.GetNumber("burst_period"));
  PDSP_ASSIGN_OR_RETURN(src.arrival.duty_cycle,
                        arrival.GetNumber("duty_cycle"));
  return src;
}

Json OperatorToJson(const OperatorDescriptor& op) {
  Json j = Json::Object();
  j.Set("type", Json::Str(EnumName(kOperatorTypes, op.type)));
  j.Set("name", Json::Str(op.name));
  j.Set("parallelism", Json::Int(op.parallelism));
  j.Set("partitioning",
        Json::Str(EnumName(kPartitionings, op.input_partitioning)));
  switch (op.type) {
    case OperatorType::kSource:
      j.Set("source_index", Json::Int(op.source_index));
      break;
    case OperatorType::kFilter:
      j.Set("filter_op", Json::Str(EnumName(kFilterOps, op.filter_op)));
      j.Set("filter_field", Json::Int(static_cast<int64_t>(op.filter_field)));
      j.Set("literal", ValueToJson(op.filter_literal));
      j.Set("selectivity_hint", Json::Number(op.selectivity_hint));
      break;
    case OperatorType::kFlatMap:
      j.Set("fanout", Json::Number(op.flatmap_fanout));
      break;
    case OperatorType::kWindowAggregate:
      j.Set("window", WindowToJson(op.window));
      j.Set("agg_fn", Json::Str(EnumName(kAggregateFns, op.agg_fn)));
      j.Set("agg_field", Json::Int(static_cast<int64_t>(op.agg_field)));
      j.Set("key_field",
            op.key_field == OperatorDescriptor::kNoKey
                ? Json::Int(-1)
                : Json::Int(static_cast<int64_t>(op.key_field)));
      break;
    case OperatorType::kWindowJoin:
      j.Set("window", WindowToJson(op.window));
      j.Set("left_key", Json::Int(static_cast<int64_t>(op.join_left_key)));
      j.Set("right_key", Json::Int(static_cast<int64_t>(op.join_right_key)));
      j.Set("join_selectivity_hint",
            Json::Number(op.join_selectivity_hint));
      break;
    case OperatorType::kUdo: {
      j.Set("kind", Json::Str(op.udo_kind));
      j.Set("cost_factor", Json::Number(op.udo_cost_factor));
      j.Set("selectivity", Json::Number(op.udo_selectivity));
      j.Set("stateful", Json::Bool(op.udo_stateful));
      Json out_fields = Json::Array();
      for (const Field& f : op.udo_output_fields) {
        Json field = Json::Object();
        field.Set("name", Json::Str(f.name));
        field.Set("type", Json::Str(EnumName(kDataTypes, f.type)));
        out_fields.Append(std::move(field));
      }
      j.Set("output_fields", std::move(out_fields));
      break;
    }
    default:
      break;
  }
  return j;
}

Result<OperatorDescriptor> OperatorFromJson(const Json& j) {
  OperatorDescriptor op;
  PDSP_ASSIGN_OR_RETURN(std::string type, j.GetString("type"));
  PDSP_ASSIGN_OR_RETURN(op.type,
                        EnumFromName(kOperatorTypes, type, "operator type"));
  PDSP_ASSIGN_OR_RETURN(op.name, j.GetString("name"));
  PDSP_ASSIGN_OR_RETURN(int64_t parallelism, j.GetInt("parallelism"));
  op.parallelism = static_cast<int>(parallelism);
  PDSP_ASSIGN_OR_RETURN(std::string part, j.GetString("partitioning"));
  PDSP_ASSIGN_OR_RETURN(
      op.input_partitioning,
      EnumFromName(kPartitionings, part, "partitioning"));
  switch (op.type) {
    case OperatorType::kSource: {
      PDSP_ASSIGN_OR_RETURN(int64_t idx, j.GetInt("source_index"));
      op.source_index = static_cast<int>(idx);
      break;
    }
    case OperatorType::kFilter: {
      PDSP_ASSIGN_OR_RETURN(std::string fop, j.GetString("filter_op"));
      PDSP_ASSIGN_OR_RETURN(op.filter_op,
                            EnumFromName(kFilterOps, fop, "filter op"));
      PDSP_ASSIGN_OR_RETURN(int64_t field, j.GetInt("filter_field"));
      op.filter_field = static_cast<size_t>(field);
      PDSP_ASSIGN_OR_RETURN(op.filter_literal, ValueFromJson(j["literal"]));
      PDSP_ASSIGN_OR_RETURN(op.selectivity_hint,
                            j.GetNumber("selectivity_hint"));
      break;
    }
    case OperatorType::kFlatMap: {
      PDSP_ASSIGN_OR_RETURN(op.flatmap_fanout, j.GetNumber("fanout"));
      break;
    }
    case OperatorType::kWindowAggregate: {
      PDSP_ASSIGN_OR_RETURN(op.window, WindowFromJson(j["window"]));
      PDSP_ASSIGN_OR_RETURN(std::string fn, j.GetString("agg_fn"));
      PDSP_ASSIGN_OR_RETURN(op.agg_fn,
                            EnumFromName(kAggregateFns, fn, "aggregate fn"));
      PDSP_ASSIGN_OR_RETURN(int64_t agg_field, j.GetInt("agg_field"));
      op.agg_field = static_cast<size_t>(agg_field);
      PDSP_ASSIGN_OR_RETURN(int64_t key_field, j.GetInt("key_field"));
      op.key_field = key_field < 0 ? OperatorDescriptor::kNoKey
                                   : static_cast<size_t>(key_field);
      break;
    }
    case OperatorType::kWindowJoin: {
      PDSP_ASSIGN_OR_RETURN(op.window, WindowFromJson(j["window"]));
      PDSP_ASSIGN_OR_RETURN(int64_t lk, j.GetInt("left_key"));
      PDSP_ASSIGN_OR_RETURN(int64_t rk, j.GetInt("right_key"));
      op.join_left_key = static_cast<size_t>(lk);
      op.join_right_key = static_cast<size_t>(rk);
      PDSP_ASSIGN_OR_RETURN(op.join_selectivity_hint,
                            j.GetNumber("join_selectivity_hint"));
      break;
    }
    case OperatorType::kUdo: {
      PDSP_ASSIGN_OR_RETURN(op.udo_kind, j.GetString("kind"));
      PDSP_ASSIGN_OR_RETURN(op.udo_cost_factor, j.GetNumber("cost_factor"));
      PDSP_ASSIGN_OR_RETURN(op.udo_selectivity, j.GetNumber("selectivity"));
      PDSP_ASSIGN_OR_RETURN(op.udo_stateful, j.GetBool("stateful"));
      const Json& out_fields = j["output_fields"];
      for (size_t i = 0; i < out_fields.size(); ++i) {
        Field f;
        PDSP_ASSIGN_OR_RETURN(f.name, out_fields.at(i).GetString("name"));
        PDSP_ASSIGN_OR_RETURN(std::string ftype,
                              out_fields.at(i).GetString("type"));
        PDSP_ASSIGN_OR_RETURN(f.type,
                              EnumFromName(kDataTypes, ftype, "data type"));
        op.udo_output_fields.push_back(std::move(f));
      }
      break;
    }
    default:
      break;
  }
  return op;
}

}  // namespace

Result<Json> PlanToJson(const LogicalPlan& plan) {
  if (!plan.validated()) {
    return Status::FailedPrecondition("plan must be validated");
  }
  Json j = Json::Object();
  j.Set("version", Json::Int(1));
  Json sources = Json::Array();
  for (const SourceBinding& src : plan.sources()) {
    sources.Append(SourceToJson(src));
  }
  j.Set("sources", std::move(sources));
  Json ops = Json::Array();
  for (size_t i = 0; i < plan.NumOperators(); ++i) {
    ops.Append(OperatorToJson(plan.op(static_cast<LogicalPlan::OpId>(i))));
  }
  j.Set("operators", std::move(ops));
  Json edges = Json::Array();
  for (const auto& [from, to] : plan.edges()) {
    Json e = Json::Array();
    e.Append(Json::Int(from));
    e.Append(Json::Int(to));
    edges.Append(std::move(e));
  }
  j.Set("edges", std::move(edges));
  return j;
}

Result<LogicalPlan> PlanFromJson(const Json& json) {
  PDSP_ASSIGN_OR_RETURN(int64_t version, json.GetInt("version"));
  if (version != 1) {
    return Status::InvalidArgument(
        StrFormat("unsupported plan version %lld",
                  static_cast<long long>(version)));
  }
  LogicalPlan plan;
  const Json& sources = json["sources"];
  for (size_t i = 0; i < sources.size(); ++i) {
    PDSP_ASSIGN_OR_RETURN(SourceBinding src, SourceFromJson(sources.at(i)));
    plan.AddSource(std::move(src));
  }
  const Json& ops = json["operators"];
  if (!ops.is_array() || ops.size() == 0) {
    return Status::InvalidArgument("missing operators");
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    PDSP_ASSIGN_OR_RETURN(OperatorDescriptor op, OperatorFromJson(ops.at(i)));
    PDSP_ASSIGN_OR_RETURN(LogicalPlan::OpId id,
                          plan.AddOperator(std::move(op)));
    if (id != static_cast<LogicalPlan::OpId>(i)) {
      return Status::Internal("operator id mismatch during load");
    }
  }
  const Json& edges = json["edges"];
  for (size_t i = 0; i < edges.size(); ++i) {
    const Json& e = edges.at(i);
    if (!e.is_array() || e.size() != 2) {
      return Status::InvalidArgument("bad edge entry");
    }
    PDSP_RETURN_NOT_OK(plan.Connect(static_cast<int>(e.at(0).AsInt()),
                                    static_cast<int>(e.at(1).AsInt())));
  }
  PDSP_RETURN_NOT_OK(plan.Validate());
  return plan;
}

Json SimResultToJson(const SimResult& result) {
  Json j = Json::Object();
  Json latency = Json::Object();
  latency.Set("p50_s", Json::Number(result.median_latency_s));
  latency.Set("mean_s", Json::Number(result.mean_latency_s));
  latency.Set("p95_s", Json::Number(result.p95_latency_s));
  latency.Set("p99_s", Json::Number(result.p99_latency_s));
  j.Set("latency", std::move(latency));
  j.Set("throughput_tps", Json::Number(result.throughput_tps));
  j.Set("source_tuples", Json::Int(result.source_tuples));
  j.Set("sink_tuples", Json::Int(result.sink_tuples));
  j.Set("late_drops", Json::Int(result.late_drops));
  j.Set("backpressure_skipped", Json::Int(result.backpressure_skipped));
  j.Set("events_processed", Json::Int(result.events_processed));
  j.Set("virtual_time_end_s", Json::Number(result.virtual_time_end));
  Json ops = Json::Array();
  for (const OperatorRunStats& s : result.op_stats) {
    Json o = Json::Object();
    o.Set("name", Json::Str(s.name));
    o.Set("parallelism", Json::Int(s.parallelism));
    o.Set("tuples_in", Json::Int(s.tuples_in));
    o.Set("tuples_out", Json::Int(s.tuples_out));
    o.Set("late_drops", Json::Int(s.late_drops));
    o.Set("utilization", Json::Number(s.utilization));
    o.Set("max_instance_util", Json::Number(s.max_instance_util));
    ops.Append(std::move(o));
  }
  j.Set("operators", std::move(ops));
  return j;
}

}  // namespace pdsp
