// Concrete learned cost models. All regress log(latency); see model.h for
// the shared interface and hyperparameters.

#ifndef PDSP_ML_MODELS_H_
#define PDSP_ML_MODELS_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/ml/model.h"

namespace pdsp {

/// \brief Ridge regression over the flat features (closed form via normal
/// equations + Cholesky).
class LinearRegressionModel : public LearnedCostModel {
 public:
  const char* name() const override { return "linear_regression"; }
  ModelKind kind() const override { return ModelKind::kLinearRegression; }
  Result<TrainReport> Fit(const Dataset& train, const Dataset& val,
                          const TrainOptions& options) override;
  Result<double> PredictLatency(const PlanSample& sample) const override;

 private:
  Standardizer standardizer_;
  Vector weights_;  // includes bias via the constant flat feature
};

/// \brief Fully connected ReLU network trained with Adam + early stopping.
class MlpModel : public LearnedCostModel {
 public:
  MlpModel();
  ~MlpModel() override;
  const char* name() const override { return "mlp"; }
  ModelKind kind() const override { return ModelKind::kMlp; }
  Result<TrainReport> Fit(const Dataset& train, const Dataset& val,
                          const TrainOptions& options) override;
  Result<double> PredictLatency(const PlanSample& sample) const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  Standardizer standardizer_;
};

/// \brief Bagged CART regression trees with per-split feature subsampling.
/// Trees are added until the validation loss stalls (the forest's analogue
/// of epoch-based early stopping).
class RandomForestModel : public LearnedCostModel {
 public:
  RandomForestModel();
  ~RandomForestModel() override;
  const char* name() const override { return "random_forest"; }
  ModelKind kind() const override { return ModelKind::kRandomForest; }
  Result<TrainReport> Fit(const Dataset& train, const Dataset& val,
                          const TrainOptions& options) override;
  Result<double> PredictLatency(const PlanSample& sample) const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// \brief DAG message-passing network over the operator graph (ZeroTune-
/// style [2]): shared-weight message rounds along dataflow edges, readout
/// from the sink embedding concatenated with the mean node embedding.
class GnnModel : public LearnedCostModel {
 public:
  GnnModel();
  ~GnnModel() override;
  const char* name() const override { return "gnn"; }
  ModelKind kind() const override { return ModelKind::kGnn; }
  Result<TrainReport> Fit(const Dataset& train, const Dataset& val,
                          const TrainOptions& options) override;
  Result<double> PredictLatency(const PlanSample& sample) const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// \brief Gradient-boosted regression trees (extension beyond the paper's
/// four families): shallow trees fit to residuals with shrinkage; boosting
/// rounds are the "epochs" and stop early on the validation loss.
class GradientBoostModel : public LearnedCostModel {
 public:
  GradientBoostModel();
  ~GradientBoostModel() override;
  const char* name() const override { return "gradient_boost"; }
  ModelKind kind() const override { return ModelKind::kGradientBoost; }
  Result<TrainReport> Fit(const Dataset& train, const Dataset& val,
                          const TrainOptions& options) override;
  Result<double> PredictLatency(const PlanSample& sample) const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pdsp

#endif  // PDSP_ML_MODELS_H_
