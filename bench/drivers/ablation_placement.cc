// Ablation: task placement policies on the *mixed* heterogeneous cluster
// (m510 + c6525 + c6320 nodes). PDSP-Bench's controller hides
// Kubernetes/Yarn scheduling; this ablation exposes what that scheduling
// decides: capacity-aware least-loaded placement puts proportionally more
// instances on the fast EPYC nodes, which pays off exactly when operators
// run hot; blind spreading (round-robin) and locality packing leave fast
// cores idle.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/apps/apps.h"
#include "src/common/string_util.h"

namespace pdsp {

int Main() {
  const RunProtocol base = bench::FigureProtocol();
  const double rate = bench::FastMode() ? 50000.0 : 150000.0;

  std::vector<std::string> columns = {"app"};
  const std::vector<PlacementKind> kinds = {
      PlacementKind::kRoundRobin, PlacementKind::kLeastLoaded,
      PlacementKind::kLocality, PlacementKind::kRandom};
  for (PlacementKind kind : kinds) {
    columns.push_back(StrFormat("%s(ms)", PlacementKindToString(kind)));
  }
  TableReporter table(
      StrFormat("Ablation: placement policy vs latency (mixed cluster x10, "
                "p=32, %.0fk ev/s)",
                rate / 1000.0),
      columns);

  const Cluster cluster = Cluster::Mixed(10);
  for (AppId app : {AppId::kSpikeDetection, AppId::kSentimentAnalysis,
                    AppId::kWordCount}) {
    std::vector<std::string> row = {GetAppInfo(app).abbrev};
    AppOptions opt;
    opt.event_rate = rate;
    // 32-way over ~4 operators puts ~13 tasks per 8-core node: packing vs
    // spreading policies now genuinely differ.
    opt.parallelism = 32;
    opt.window_scale = 0.4;
    auto plan = MakeApp(app, opt);
    if (!plan.ok()) return 1;
    for (PlacementKind kind : kinds) {
      RunProtocol protocol = base;
      protocol.placement = kind;
      auto cell = MeasureCell(*plan, cluster, protocol);
      row.push_back(cell.ok() ? LatencyCell(cell->mean_median_latency_s)
                              : "n/a");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  (void)table.WriteCsv("results/ablation_placement.csv");
  return 0;
}

}  // namespace pdsp

int main() { return pdsp::Main(); }
