// Ablation: why does the GNN win in the paper? The flat models here ship
// with cardinality-model "oracle" features (estimated rates, key counts,
// per-instance utilization) that a benchmarking system can compute but a
// production optimizer often cannot. Stripping those features from the flat
// models — leaving only raw structure and parameters — recreates the
// paper's setting, where per-operator features plus message passing must
// recover the bottleneck structurally.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/common/string_util.h"
#include "src/harness/harness.h"
#include "src/ml/datagen.h"
#include "src/ml/trainer.h"

namespace pdsp {

namespace {

// Zeroes the derived (oracle) flat features in a copy of the dataset.
Dataset StripDerivedFeatures(const Dataset& data) {
  Dataset out = data;
  for (PlanSample& s : out.samples) {
    for (size_t idx : kFlatDerivedFeatureIndices) s.flat[idx] = 0.0;
  }
  return out;
}

DatasetSplit StripSplit(const DatasetSplit& split) {
  DatasetSplit out;
  out.train = StripDerivedFeatures(split.train);
  out.val = StripDerivedFeatures(split.val);
  out.test = StripDerivedFeatures(split.test);
  return out;
}

}  // namespace

int Main(int argc, char** argv) {
  const int jobs = bench::ParseJobs(argc, argv);
  const bool fast = bench::FastMode();

  DataGenOptions gen;
  gen.jobs = jobs;
  gen.num_samples = fast ? 45 : 200;
  gen.seed = 717;
  gen.query.rate_floor = 1000.0;
  gen.query.rate_cap = 200000.0;
  gen.query.count_policy_probability = 0.2;
  gen.query.window_durations_ms = {250, 500, 1000};
  gen.query.max_keys = 10000;
  gen.strategy = EnumerationStrategy::kRandom;
  gen.enumeration.max_degree = 32;
  gen.execution.sim.duration_s = fast ? 1.5 : 2.5;
  gen.execution.sim.warmup_s = 0.5;

  const Cluster cluster = Cluster::M510(10);
  std::printf("generating %d labeled queries...\n", gen.num_samples);
  auto corpus = GenerateTrainingData(gen, cluster);
  if (!corpus.ok()) {
    std::fprintf(stderr, "datagen: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  auto split = SplitDataset(corpus->dataset, 0.7, 0.15, 77);
  if (!split.ok()) return 1;
  const DatasetSplit stripped = StripSplit(*split);

  TrainOptions train;
  train.max_epochs = fast ? 60 : 250;
  train.patience = 15;
  train.seed = 9;

  TableReporter table(
      "Ablation: flat-model features with vs without the analytic oracle "
      "(median q-error, held-out)",
      {"model", "rich features", "raw structure only"});

  for (ModelKind kind :
       {ModelKind::kLinearRegression, ModelKind::kMlp,
        ModelKind::kRandomForest, ModelKind::kGradientBoost}) {
    std::vector<std::string> row = {ModelKindToString(kind)};
    const DatasetSplit* variants[] = {&*split, &stripped};
    for (const DatasetSplit* variant : variants) {
      auto model = MakeModel(kind);
      auto eval = TrainAndEvaluate(model.get(), *variant, train);
      row.push_back(eval.ok()
                        ? StrFormat("%.2f", eval->test_metrics.median_q)
                        : "n/a");
    }
    table.AddRow(std::move(row));
  }
  // The GNN uses the graph encoding in both variants: its per-node features
  // are local observations, and structure is its mechanism for combining
  // them.
  {
    auto gnn = MakeModel(ModelKind::kGnn);
    auto eval = TrainAndEvaluate(gnn.get(), *split, train);
    const std::string q =
        eval.ok() ? StrFormat("%.2f", eval->test_metrics.median_q) : "n/a";
    table.AddRow({"gnn (graph)", q, q});
  }
  table.Print();
  (void)table.WriteCsv("results/ablation_features.csv");
  return 0;
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
