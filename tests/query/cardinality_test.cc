#include "src/query/cardinality.h"

#include <gtest/gtest.h>

#include "src/query/selectivity.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

using testing::KeyValueStream;
using testing::PoissonArrival;

TEST(CardinalityTest, RequiresValidatedPlan) {
  LogicalPlan plan;
  EXPECT_TRUE(CardinalityModel::Compute(plan).status().IsFailedPrecondition());
}

TEST(CardinalityTest, SourceRateMatchesArrival) {
  auto plan = testing::LinearPlan(/*rate=*/5000.0);
  ASSERT_TRUE(plan.ok());
  auto cards = CardinalityModel::Compute(*plan);
  ASSERT_TRUE(cards.ok());
  auto src = plan->FindOperator("src");
  ASSERT_TRUE(src.ok());
  EXPECT_DOUBLE_EQ((*cards)[*src].output_rate, 5000.0);
}

TEST(CardinalityTest, FilterHalvesRate) {
  auto plan = testing::LinearPlan(/*rate=*/1000.0);
  ASSERT_TRUE(plan.ok());
  auto cards = CardinalityModel::Compute(*plan);
  ASSERT_TRUE(cards.ok());
  auto f = plan->FindOperator("filter");
  ASSERT_TRUE(f.ok());
  // val > 50 over uniform [0,100) => 0.5.
  EXPECT_NEAR((*cards)[*f].output_rate, 500.0, 1.0);
  EXPECT_NEAR((*cards)[*f].selectivity, 0.5, 0.01);
}

TEST(CardinalityTest, ExplicitHintOverridesEstimate) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(1000.0));
  auto f = b.Filter("f", s, 1, FilterOp::kGt, Value(50.0));
  b.Sink("k", f);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  auto fid = plan->FindOperator("f");
  ASSERT_TRUE(fid.ok());
  plan->mutable_op(*fid)->selectivity_hint = 0.2;
  ASSERT_TRUE(plan->Validate().ok());
  auto cards = CardinalityModel::Compute(*plan);
  ASSERT_TRUE(cards.ok());
  EXPECT_NEAR((*cards)[*fid].output_rate, 200.0, 1e-6);
}

TEST(CardinalityTest, FlatMapScalesByFanout) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100.0));
  auto fm = b.FlatMap("fm", s, 8.0);
  b.Sink("k", fm);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  auto cards = CardinalityModel::Compute(*plan);
  ASSERT_TRUE(cards.ok());
  auto id = plan->FindOperator("fm");
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ((*cards)[*id].output_rate, 800.0);
}

TEST(CardinalityTest, TimeWindowAggregateEmitsKeysPerSlide) {
  // 100 keys, 1s tumbling window, high input rate: every key present in
  // every window -> 100 outputs/s.
  auto plan = testing::LinearPlan(/*rate=*/100000.0);
  ASSERT_TRUE(plan.ok());
  auto cards = CardinalityModel::Compute(*plan);
  ASSERT_TRUE(cards.ok());
  auto agg = plan->FindOperator("agg");
  ASSERT_TRUE(agg.ok());
  EXPECT_NEAR((*cards)[*agg].output_rate, 100.0, 1e-6);
  EXPECT_DOUBLE_EQ((*cards)[*agg].distinct_keys, 100.0);
}

TEST(CardinalityTest, SparseWindowBoundsKeysByContents) {
  // 2 tuples/s into a 1s window with 100 keys: at most ~2 keys per window.
  auto plan = testing::LinearPlan(/*rate=*/4.0);
  ASSERT_TRUE(plan.ok());
  auto cards = CardinalityModel::Compute(*plan);
  ASSERT_TRUE(cards.ok());
  auto agg = plan->FindOperator("agg");
  ASSERT_TRUE(agg.ok());
  EXPECT_LE((*cards)[*agg].output_rate, 3.0);
}

TEST(CardinalityTest, CountWindowAggregateEmitsPerSlideTuples) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(1000.0));
  WindowSpec win;
  win.policy = WindowPolicy::kCount;
  win.length_tuples = 100;
  auto agg = b.WindowAggregate("agg", s, win, AggregateFn::kSum, 1, 0);
  b.Sink("k", agg);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  auto cards = CardinalityModel::Compute(*plan);
  ASSERT_TRUE(cards.ok());
  auto id = plan->FindOperator("agg");
  ASSERT_TRUE(id.ok());
  EXPECT_NEAR((*cards)[*id].output_rate, 10.0, 1e-6);  // 1000/100
}

TEST(CardinalityTest, JoinOutputScalesWithBothWindows) {
  auto plan = testing::TwoWayJoinPlan(/*rate=*/1000.0);
  ASSERT_TRUE(plan.ok());
  auto cards = CardinalityModel::Compute(*plan);
  ASSERT_TRUE(cards.ok());
  auto j = plan->FindOperator("join");
  ASSERT_TRUE(j.ok());
  // Each filter passes 0.75, so each side delivers ~750/s into a 1s window.
  // Keys are Zipf(100, 0.8): the skew-aware match probability is
  // sum_k p(k)^2, well above the uniform 1/100.
  FieldGeneratorSpec key;
  key.dist = FieldDistribution::kZipfKey;
  key.cardinality = 100;
  key.zipf_s = 0.8;
  const double sel = KeyMatchProbability(key, key);
  EXPECT_GT(sel, 1.0 / 100.0);
  EXPECT_NEAR((*cards)[*j].output_rate, 750.0 * 750.0 * sel * 2.0,
              750.0 * 750.0 * sel * 2.0 * 0.05);
  EXPECT_DOUBLE_EQ((*cards)[*j].distinct_keys, 100.0);
}

TEST(CardinalityTest, JoinSelectivityHintOverridesKeyMath) {
  auto plan = testing::TwoWayJoinPlan(/*rate=*/1000.0);
  ASSERT_TRUE(plan.ok());
  auto j = plan->FindOperator("join");
  ASSERT_TRUE(j.ok());
  plan->mutable_op(*j)->join_selectivity_hint = 0.0;
  ASSERT_TRUE(plan->Validate().ok());
  auto cards = CardinalityModel::Compute(*plan);
  ASSERT_TRUE(cards.ok());
  EXPECT_DOUBLE_EQ((*cards)[*j].output_rate, 0.0);
}

TEST(CardinalityTest, UdoSelectivityApplied) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(1000.0));
  auto u = b.Udo("u", s, "noop", 1.0, 0.25, false);
  b.Sink("k", u);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  auto cards = CardinalityModel::Compute(*plan);
  ASSERT_TRUE(cards.ok());
  auto id = plan->FindOperator("u");
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ((*cards)[*id].output_rate, 250.0);
}

TEST(CardinalityTest, SinkPassesThrough) {
  auto plan = testing::LinearPlan(/*rate=*/100000.0);
  ASSERT_TRUE(plan.ok());
  auto cards = CardinalityModel::Compute(*plan);
  ASSERT_TRUE(cards.ok());
  EXPECT_NEAR((*cards)[plan->SinkId()].output_rate, 100.0, 1e-6);
}

TEST(CardinalityTest, TupleBytesComeFromOutputSchema) {
  auto plan = testing::TwoWayJoinPlan();
  ASSERT_TRUE(plan.ok());
  auto cards = CardinalityModel::Compute(*plan);
  ASSERT_TRUE(cards.ok());
  auto j = plan->FindOperator("join");
  auto s1 = plan->FindOperator("src1");
  ASSERT_TRUE(j.ok() && s1.ok());
  // Join output (4 fields) is wider than source output (2 fields).
  EXPECT_GT((*cards)[*j].tuple_bytes, (*cards)[*s1].tuple_bytes);
}

}  // namespace
}  // namespace pdsp
