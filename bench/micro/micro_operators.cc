// Microbenchmarks for the operator runtime: per-tuple costs of filters,
// window aggregation, joins and representative UDOs. These measure the real
// compute the simulator's cost model abstracts, and document the relative
// expense of operator families (filters cheapest, joins and map-matching
// UDOs heaviest).

#include <benchmark/benchmark.h>

#include "src/apps/apps.h"
#include "src/runtime/operators.h"
#include "src/runtime/udo.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

StreamElement KeyValueElement(Rng* rng, double t) {
  StreamElement e;
  e.tuple.values = {Value(rng->UniformInt(1, 100)),
                    Value(rng->Uniform(0.0, 100.0))};
  e.tuple.event_time = t;
  e.birth = t;
  return e;
}

void BM_FilterProcess(benchmark::State& state) {
  auto plan = testing::LinearPlan();
  auto inst =
      CreateOperatorInstance(*plan, *plan->FindOperator("filter"), 0, 1);
  Rng rng(1);
  std::vector<StreamElement> out;
  double t = 0.0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        (*inst)->Process(KeyValueElement(&rng, t), 0, t, &out));
    t += 1e-5;
  }
}
BENCHMARK(BM_FilterProcess);

void BM_WindowAggProcess(benchmark::State& state) {
  auto plan = testing::LinearPlan();
  auto inst = CreateOperatorInstance(*plan, *plan->FindOperator("agg"), 0, 1);
  Rng rng(1);
  std::vector<StreamElement> out;
  double t = 0.0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        (*inst)->Process(KeyValueElement(&rng, t), 0, t, &out));
    (*inst)->OnTimer(t, &out);
    t += 1e-5;
  }
}
BENCHMARK(BM_WindowAggProcess);

void BM_WindowJoinProcess(benchmark::State& state) {
  auto plan = testing::TwoWayJoinPlan();
  auto inst =
      CreateOperatorInstance(*plan, *plan->FindOperator("join"), 0, 1);
  Rng rng(1);
  std::vector<StreamElement> out;
  double t = 0.0;
  int port = 0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        (*inst)->Process(KeyValueElement(&rng, t), port, t, &out));
    port ^= 1;
    t += 1e-5;
  }
}
BENCHMARK(BM_WindowJoinProcess);

void BM_UdoSentimentScore(benchmark::State& state) {
  RegisterAppUdos();
  AppOptions opt;
  auto plan = MakeApp(AppId::kSentimentAnalysis, opt);
  auto inst =
      CreateOperatorInstance(*plan, *plan->FindOperator("sentiment"), 0, 1);
  StreamElement e;
  e.tuple.values = {Value(1),
                    Value("ba ce di fo gu ha ba ce di fo gu ha ba ce")};
  std::vector<StreamElement> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize((*inst)->Process(e, 0, 0.0, &out));
  }
}
BENCHMARK(BM_UdoSentimentScore);

void BM_UdoMapMatch(benchmark::State& state) {
  RegisterAppUdos();
  AppOptions opt;
  auto plan = MakeApp(AppId::kTrafficMonitoring, opt);
  auto inst =
      CreateOperatorInstance(*plan, *plan->FindOperator("map_match"), 0, 1);
  StreamElement e;
  e.tuple.values = {Value(1), Value(48.51), Value(8.52), Value(88.0)};
  std::vector<StreamElement> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize((*inst)->Process(e, 0, 0.0, &out));
  }
}
BENCHMARK(BM_UdoMapMatch);

void BM_ValueHash(benchmark::State& state) {
  Rng rng(1);
  Value v(rng.UniformInt(0, 1 << 30));
  for (auto _ : state) benchmark::DoNotOptimize(v.Hash());
}
BENCHMARK(BM_ValueHash);

}  // namespace
}  // namespace pdsp
