#include "src/cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/rng.h"
#include "src/common/string_util.h"

namespace pdsp {

NodeSpec M510Spec() {
  NodeSpec s;
  s.model = "m510";
  s.cpu = "Intel Xeon D-1548";
  s.cores = 8;
  s.clock_ghz = 2.0;
  s.speed_factor = 1.0;
  s.memory_gb = 64.0;
  s.storage_gb = 256.0;
  s.nic_gbps = 10.0;
  return s;
}

NodeSpec C6525Spec() {
  NodeSpec s;
  s.model = "c6525_25g";
  s.cpu = "AMD EPYC 7302P";
  s.cores = 16;
  s.clock_ghz = 2.2;
  // Zen2 IPC over Xeon D plus clock advantage.
  s.speed_factor = 1.45;
  s.memory_gb = 128.0;
  s.storage_gb = 480.0;
  s.nic_gbps = 25.0;
  return s;
}

NodeSpec C6320Spec() {
  NodeSpec s;
  s.model = "c6320";
  s.cpu = "Intel Xeon E5-2660 v3 (Haswell)";
  s.cores = 28;
  s.clock_ghz = 2.0;
  // Older core, similar clock: slightly above the D-1548 per core.
  s.speed_factor = 1.1;
  s.memory_gb = 256.0;
  s.storage_gb = 1024.0;
  s.nic_gbps = 10.0;
  return s;
}

void Cluster::AddNodes(const NodeSpec& spec, int count) {
  // Deterministic per-node speed jitter; reseeded from (seed, node id) so a
  // cluster's hardware is stable across runs.
  for (int i = 0; i < count; ++i) {
    Node n;
    n.id = static_cast<int>(nodes_.size());
    n.spec = spec;
    double jitter = 1.0;
    if (options_.speed_jitter > 0.0) {
      Rng rng(options_.jitter_seed * 1000003ULL +
              static_cast<uint64_t>(n.id) * 7919ULL);
      jitter = std::clamp(rng.Normal(1.0, options_.speed_jitter), 0.6, 1.4);
    }
    n.effective_speed = spec.speed_factor * jitter;
    nodes_.push_back(n);
  }
}

Cluster Cluster::M510(int nodes) {
  Options opt;
  opt.speed_jitter = 0.0;  // homogeneous
  Cluster c(opt);
  c.AddNodes(M510Spec(), nodes);
  return c;
}

Cluster Cluster::C6525(int nodes) {
  Options opt;
  opt.speed_jitter = 0.12;
  opt.jitter_seed = 6525;
  Cluster c(opt);
  c.AddNodes(C6525Spec(), nodes);
  return c;
}

Cluster Cluster::C6320(int nodes) {
  Options opt;
  opt.speed_jitter = 0.12;
  opt.jitter_seed = 6320;
  Cluster c(opt);
  c.AddNodes(C6320Spec(), nodes);
  return c;
}

Cluster Cluster::Mixed(int nodes) {
  Options opt;
  opt.speed_jitter = 0.08;
  opt.jitter_seed = 77;
  Cluster c(opt);
  const int third = nodes / 3;
  c.AddNodes(M510Spec(), nodes - 2 * third);
  c.AddNodes(C6525Spec(), third);
  c.AddNodes(C6320Spec(), third);
  return c;
}

int Cluster::TotalCores() const {
  int total = 0;
  for (const Node& n : nodes_) total += n.spec.cores;
  return total;
}

double Cluster::MeanSpeed() const {
  if (nodes_.empty()) return 0.0;
  double sum = 0.0;
  for (const Node& n : nodes_) sum += n.effective_speed;
  return sum / static_cast<double>(nodes_.size());
}

double Cluster::LinkLatencySeconds(int a, int b) const {
  return a == b ? 0.0 : options_.link_latency_s;
}

double Cluster::LinkBandwidthBytesPerSec(int a, int b) const {
  if (a == b) return std::numeric_limits<double>::infinity();
  const double gbps = std::min(nodes_.at(a).spec.nic_gbps,
                               nodes_.at(b).spec.nic_gbps);
  return gbps * 1e9 / 8.0;
}

bool Cluster::IsHeterogeneous() const {
  for (size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].spec.model != nodes_[0].spec.model) return true;
    const double rel = std::abs(nodes_[i].effective_speed -
                                nodes_[0].effective_speed) /
                       nodes_[0].effective_speed;
    if (rel > 0.01) return true;
  }
  return false;
}

std::string Cluster::ToString() const {
  std::string out = StrFormat("cluster: %zu nodes, %d cores, mean speed %.2f\n",
                              NumNodes(), TotalCores(), MeanSpeed());
  for (const Node& n : nodes_) {
    out += StrFormat("  node %d: %s (%d cores @ %.1fGHz, speed %.2f, %gGbps)\n",
                     n.id, n.spec.model.c_str(), n.spec.cores,
                     n.spec.clock_ghz, n.effective_speed, n.spec.nic_gbps);
  }
  return out;
}

}  // namespace pdsp
