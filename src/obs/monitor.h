// pdsp::obs::monitor — live telemetry for sweeps. Three pieces close the
// gap between "the sweep is running" and "a human can see what it is
// doing":
//
//  1. SweepProgress — lock-light shared state the sweep scheduler updates
//     on cell boundaries (StartCell/FinishCell; one small mutex, touched a
//     few times per cell, never per tuple). Each snapshot also reads the
//     running cell's MetricsRegistry counters, which is how the watchdog
//     can tell a slow-but-alive worker from a stalled one.
//  2. SnapshotSampler — a background thread that snapshots SweepProgress on
//     a wall-clock interval (default 500 ms), feeds the watchdog, renders a
//     single-line ANSI status (rich), periodic log lines (plain) or
//     nothing, and appends every snapshot to an append-only progress.jsonl
//     so the monitoring itself is replayable after the fact.
//  3. SweepWatchdog — a pure function of the snapshot stream emitting
//     stable PDSP-M### monitor diagnostics:
//       PDSP-M201  straggler cell: elapsed > k × median completed-cell time
//       PDSP-M202  stalled worker: no metric delta across >= N snapshots
//       PDSP-M203  worker-utilization imbalance: min busy fraction below
//                  ratio × max busy fraction
//     Being pure over snapshots keeps the rules deterministic and lets
//     tests synthesize exact snapshot sequences.
//
// The monitor only *observes*: it never touches seeds, contexts or cell
// results, so per-cell virtual-time results stay bit-identical with
// monitoring on or off, at any --jobs. Final findings surface as the
// MonitorSummary the sweep scheduler folds into its summary ledger record
// (diagnosis_codes) and exports as pdsp.monitor.* gauges.
// See DESIGN.md "Monitoring & reporting".

#ifndef PDSP_OBS_MONITOR_H_
#define PDSP_OBS_MONITOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/store/json.h"

namespace pdsp {
namespace obs {

/// Current progress.jsonl line schema; bumped on incompatible layout
/// changes so replay tooling never misreads old files.
inline constexpr int kProgressSchemaVersion = 1;

/// \brief Knobs for live sweep monitoring.
struct MonitorOptions {
  /// Master switch; a disabled monitor costs nothing (no thread, no hooks).
  bool enabled = false;

  /// Wall-clock snapshot cadence.
  double interval_s = 0.5;

  /// How snapshots are rendered while the sweep runs.
  enum class RenderMode {
    kOff,    ///< no terminal output (progress.jsonl may still be written)
    kPlain,  ///< one log line per snapshot (CI logs, redirected output)
    kRich,   ///< single-line ANSI status, rewritten in place (TTYs)
  };
  RenderMode render = RenderMode::kOff;

  /// Append-only snapshot log (one SweepSnapshot JSON per line); empty
  /// disables the file.
  std::string jsonl_path;

  /// Render target; nullptr means stderr.
  std::FILE* stream = nullptr;

  // --- watchdog thresholds -----------------------------------------------
  /// M201: a running cell is a straggler when its elapsed time exceeds this
  /// multiple of the median completed-cell duration.
  double straggler_ratio = 3.0;
  /// M201 needs at least this many completed cells for a stable median.
  size_t straggler_min_completed = 3;
  /// M202: consecutive snapshots a worker may sit in the same cell with no
  /// observable metric delta before it is declared stalled.
  int stall_snapshots = 4;
  /// M203: fires when min worker busy fraction < ratio × max busy
  /// fraction, once the sweep is old enough to judge.
  double imbalance_ratio = 0.25;
  double imbalance_min_wall_s = 1.0;
  /// EWMA smoothing factor for completed-cell durations (ETA estimate).
  double eta_alpha = 0.3;
};

/// Parses a --progress flag value: "" or "auto" picks rich on a TTY and
/// plain otherwise; "plain"/"rich"/"off" select explicitly.
Result<MonitorOptions::RenderMode> ParseRenderMode(const std::string& value,
                                                   bool stderr_is_tty);

/// \brief One worker's state at snapshot time.
struct WorkerSnapshot {
  int worker = 0;
  /// Cell index the worker is executing; -1 when idle/done.
  int current_cell = -1;
  std::string current_label;
  /// Wall seconds spent in the current cell (0 when idle).
  double cell_elapsed_s = 0.0;
  /// Cells this worker has completed.
  int64_t cells_done = 0;
  /// Cumulative wall seconds spent inside cells (including the current one).
  double busy_s = 0.0;
  /// Sum of the running cell's registry counters — the liveness signal the
  /// M202 rule watches for deltas. -1 when no registry is attached.
  int64_t metric_sum = -1;

  Json ToJson() const;
};

/// \brief One sampled state of a whole sweep (a progress.jsonl line).
struct SweepSnapshot {
  int schema_version = kProgressSchemaVersion;
  std::string sweep;       ///< sweep name
  int64_t seq = 0;         ///< strictly increasing per sampler
  double wall_s = 0.0;     ///< seconds since sweep start
  size_t cells_total = 0;
  size_t cells_done = 0;   ///< completed (ok or failed)
  size_t cells_failed = 0;
  /// EWMA-based seconds-to-completion estimate; < 0 when unknown (nothing
  /// completed yet).
  double eta_s = -1.0;
  /// Median duration of completed cells; 0 until something completes.
  double median_cell_s = 0.0;
  bool final_snapshot = false;
  std::vector<WorkerSnapshot> workers;

  /// Busy fraction of one worker (busy_s / wall_s, clamped to [0,1]).
  double BusyFraction(const WorkerSnapshot& w) const;

  Json ToJson() const;
};

/// \brief One monitor diagnostic (stable PDSP-M### code).
struct MonitorFinding {
  std::string code;     ///< "PDSP-M201" | "PDSP-M202" | "PDSP-M203"
  int worker = -1;      ///< worker index the finding is about (-1 = sweep)
  std::string subject;  ///< cell label / worker name the code fired for
  std::string message;  ///< human-readable explanation with numbers

  Json ToJson() const;
};

/// \brief EWMA estimator over completed-cell durations, answering "how long
/// until the sweep finishes" for the status line.
class EtaEstimator {
 public:
  explicit EtaEstimator(double alpha = 0.3) : alpha_(alpha) {}

  void AddCompletedCell(double duration_s);

  /// Smoothed per-cell seconds; 0 until the first completion.
  double ewma_s() const { return ewma_s_; }
  int64_t completed() const { return completed_; }

  /// Expected seconds to drain `cells_remaining` queued cells plus the
  /// given in-flight cells (their elapsed time is credited) across `jobs`
  /// workers. Returns -1 when no completed cell has calibrated the EWMA.
  double Estimate(size_t cells_remaining, int jobs,
                  const std::vector<double>& in_flight_elapsed_s) const;

 private:
  double alpha_;
  double ewma_s_ = 0.0;
  int64_t completed_ = 0;
};

/// \brief The M201/M202/M203 rule engine. Feed snapshots in order; each
/// Evaluate returns only the findings that fired for the first time (a
/// (code, subject) pair never re-fires), so callers can stream them to the
/// renderer without deduplicating.
class SweepWatchdog {
 public:
  explicit SweepWatchdog(const MonitorOptions& options = {})
      : options_(options) {}

  std::vector<MonitorFinding> Evaluate(const SweepSnapshot& snapshot);

  /// Everything fired so far, in fire order.
  const std::vector<MonitorFinding>& findings() const { return findings_; }

  /// Sorted, deduplicated PDSP-M### codes — the ledger-record form.
  std::vector<std::string> Codes() const;

 private:
  struct WorkerTrack {
    int cell = -1;
    int64_t metric_sum = -1;
    int snapshots_without_delta = 0;
  };

  MonitorOptions options_;
  std::vector<WorkerTrack> tracks_;
  std::set<std::string> fired_;  // "code|subject" first-fire dedup
  std::vector<MonitorFinding> findings_;
};

/// \brief Shared progress state between sweep workers (writers) and the
/// sampler (reader). All members are thread-safe; updates happen on cell
/// boundaries only, so contention is negligible next to cell runtimes.
class SweepProgress {
 public:
  SweepProgress(std::string name, size_t cells_total, int jobs);

  /// Worker `worker` starts executing cell `cell`. `metrics` is the cell's
  /// live registry (may be null) — snapshots sum its counters to expose a
  /// liveness signal without locking anything per tuple.
  void StartCell(int worker, size_t cell, const std::string& label,
                 std::shared_ptr<const MetricsRegistry> metrics);

  /// Worker `worker` finished its current cell.
  void FinishCell(int worker, size_t cell, bool ok);

  /// Samples the current state and bumps the snapshot sequence number.
  SweepSnapshot Snapshot(bool final_snapshot = false);

  const std::string& name() const { return name_; }
  size_t cells_total() const { return cells_total_; }
  int jobs() const { return jobs_; }

 private:
  struct WorkerSlot {
    int current_cell = -1;
    std::string label;
    std::chrono::steady_clock::time_point cell_start;
    int64_t cells_done = 0;
    double busy_s = 0.0;  // completed cells only; running cell added live
    std::shared_ptr<const MetricsRegistry> metrics;
  };

  std::string name_;
  size_t cells_total_;
  int jobs_;
  std::chrono::steady_clock::time_point start_;

  mutable Mutex mu_;
  std::vector<WorkerSlot> workers_ PDSP_GUARDED_BY(mu_);
  size_t cells_done_ PDSP_GUARDED_BY(mu_) = 0;
  size_t cells_failed_ PDSP_GUARDED_BY(mu_) = 0;
  std::vector<double> completed_cell_s_ PDSP_GUARDED_BY(mu_);
  EtaEstimator eta_ PDSP_GUARDED_BY(mu_);
  int64_t seq_ PDSP_GUARDED_BY(mu_) = 0;
};

/// \brief Final monitor state returned by SnapshotSampler::Stop().
struct MonitorSummary {
  SweepSnapshot last;                        ///< the final snapshot
  std::vector<MonitorFinding> findings;      ///< fire order
  std::vector<std::string> codes;            ///< sorted + deduplicated
  std::vector<double> worker_busy_fraction;  ///< indexed by worker
  /// Labels of cells flagged PDSP-M201.
  std::vector<std::string> straggler_cells;

  Json ToJson() const;

  /// Exports pdsp.monitor.{snapshots, findings, busy_fraction_min/max} and
  /// per-worker pdsp.monitor.worker<N>.busy_fraction gauges.
  void ExportTo(MetricsRegistry* registry) const;
};

/// \brief Background wall-clock sampler driving the watchdog, the renderer
/// and progress.jsonl. Construction does not start the thread; Stop() (or
/// destruction) joins it and takes one last snapshot so the file always
/// ends with `final_snapshot: true`.
class SnapshotSampler {
 public:
  SnapshotSampler(SweepProgress* progress, MonitorOptions options);
  ~SnapshotSampler();

  SnapshotSampler(const SnapshotSampler&) = delete;
  SnapshotSampler& operator=(const SnapshotSampler&) = delete;

  void Start();

  /// Idempotent: takes the final snapshot, joins the thread, returns the
  /// summary (also cached for repeat calls).
  MonitorSummary Stop();

 private:
  void Loop();
  /// One sampler tick: snapshot, watchdog, render, append.
  void Tick(bool final_snapshot);
  void Render(const SweepSnapshot& snapshot,
              const std::vector<MonitorFinding>& fresh);
  void AppendJsonl(const SweepSnapshot& snapshot,
                   const std::vector<MonitorFinding>& fresh);

  SweepProgress* progress_;
  MonitorOptions options_;
  std::FILE* stream_;
  SweepWatchdog watchdog_;

  std::thread thread_;
  Mutex stop_mu_;
  /// _any so it can block on the annotated Mutex directly.
  std::condition_variable_any stop_cv_;
  /// The only cross-thread state: the controlling thread raises it, the
  /// sampler thread polls it. Everything below is touched exclusively by
  /// the controlling thread (before Start() or after join), so it needs
  /// no guard.
  bool stop_requested_ PDSP_GUARDED_BY(stop_mu_) = false;
  bool stopped_ = false;
  bool rich_line_open_ = false;
  MonitorSummary summary_;
};

}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_MONITOR_H_
