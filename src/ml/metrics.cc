#include "src/ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/common/stats.h"
#include "src/common/string_util.h"

namespace pdsp {

double QError(double truth, double prediction) {
  if (truth <= 0.0 || prediction <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(truth / prediction, prediction / truth);
}

std::string EvalMetrics::ToString() const {
  return StrFormat(
      "q-error: median=%.3f mean=%.3f p90=%.3f p95=%.3f max=%.3f (n=%zu)",
      median_q, mean_q, p90_q, p95_q, max_q, count);
}

Result<EvalMetrics> Evaluate(const LearnedCostModel& model,
                             const Dataset& data) {
  if (data.empty()) return Status::InvalidArgument("empty evaluation set");
  std::vector<double> qs;
  qs.reserve(data.size());
  for (const PlanSample& s : data.samples) {
    PDSP_ASSIGN_OR_RETURN(double pred, model.PredictLatency(s));
    qs.push_back(QError(s.latency_s, pred));
  }
  EvalMetrics m;
  m.count = qs.size();
  m.median_q = Percentile(qs, 50.0);
  m.mean_q = Mean(qs);
  m.p90_q = Percentile(qs, 90.0);
  m.p95_q = Percentile(qs, 95.0);
  m.max_q = *std::max_element(qs.begin(), qs.end());
  return m;
}

}  // namespace pdsp
