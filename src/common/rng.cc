#include "src/common/rng.h"

#include <algorithm>
#include <cmath>

namespace pdsp {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  // Debiased modulo (Lemire-style rejection).
  const uint64_t threshold = (0 - range) % range;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return lo + static_cast<int64_t>(r % range);
  }
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double lambda) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth: multiply uniforms until below e^-mean.
    const double limit = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  const double draw = Normal(mean, std::sqrt(mean));
  return std::max<int64_t>(0, static_cast<int64_t>(std::lround(draw)));
}

namespace {

// Helpers for Hörmann's rejection-inversion Zipf sampler.
double ZipfH(double x, double ss, double s) {
  // Integral of x^-s: x^(1-s)/(1-s) for s != 1, log(x) otherwise.
  if (s == 1.0) return std::log(x);
  return std::exp(ss * std::log(x)) / ss;  // ss = 1 - s
}

double ZipfHInv(double x, double ss, double s) {
  if (s == 1.0) return std::exp(x);
  return std::exp(std::log(ss * x) / ss);
}

}  // namespace

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 1;
  if (s <= 0.0) return UniformInt(1, n);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_ss_ = (s == 1.0) ? 0.0 : 1.0 - s;
    zipf_h_x1_ = ZipfH(1.5, zipf_ss_, s) - 1.0;
    zipf_hx0_ = ZipfH(static_cast<double>(n) + 0.5, zipf_ss_, s);
  }
  const double s_ = zipf_s_;
  for (;;) {
    const double u = zipf_h_x1_ + NextDouble() * (zipf_hx0_ - zipf_h_x1_);
    const double x = ZipfHInv(u, zipf_ss_, s_);
    int64_t k = static_cast<int64_t>(x + 0.5);
    k = std::clamp<int64_t>(k, 1, n);
    const double kd = static_cast<double>(k);
    if (u >= ZipfH(kd + 0.5, zipf_ss_, s_) - std::exp(-s_ * std::log(kd))) {
      return k;
    }
  }
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return 0;
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(0.0, weights[i]);
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t stream_id) {
  // Mix current state with the stream id through SplitMix64 for a fresh,
  // decorrelated generator.
  SplitMix64 sm(s_[0] ^ Rotl(stream_id, 17) ^ 0xd1b54a32d192ed03ULL);
  return Rng(sm.Next());
}

}  // namespace pdsp
