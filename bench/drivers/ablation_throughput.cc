// Extension experiment: sustainable throughput. The paper's evaluation
// reports latency; PDSP-Bench also measures throughput ("special emphasis
// on its performance (latency and throughput)"). This driver sweeps the
// offered event rate for a fixed parallelism and reports delivered results,
// source backpressure and the hottest-operator utilization — locating each
// application's capacity knee.

#include <algorithm>
#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/apps/apps.h"
#include "src/common/string_util.h"

namespace pdsp {

int Main(int argc, char** argv) {
  const bench::DriverSweepOptions opts = bench::ParseDriverOptions(argc, argv);
  RegisterAppUdos();
  const bool fast = bench::FastMode();
  const Cluster cluster = Cluster::M510(10);
  const std::vector<double> rates =
      fast ? std::vector<double>{10000, 50000}
           : std::vector<double>{10000, 50000, 100000, 200000, 500000,
                                 1000000};

  TableReporter table(
      "Extension: offered rate vs delivered results (p=16, m510 x10)",
      {"app", "offered(ev/s)", "results/s", "p50(ms)", "bp_skipped",
       "hottest util"});

  // Capacity-knee sweeps are single-shot by design: one run per offered
  // rate, no repeat averaging.
  RunProtocol protocol;
  protocol.repeats = 1;
  protocol.duration_s = fast ? 1.5 : 2.5;
  protocol.warmup_s = 0.5;

  const std::vector<AppId> apps = {AppId::kSpikeDetection, AppId::kWordCount,
                                   AppId::kTpcH};
  std::vector<exec::SweepCell> cells;
  for (AppId app : apps) {
    for (double rate : rates) {
      exec::SweepCell cell;
      AppOptions opt;
      opt.event_rate = rate;
      opt.parallelism = 16;
      opt.window_scale = 0.4;
      cell.make_plan = [app, opt] { return MakeApp(app, opt); };
      cell.cluster = cluster;
      cell.protocol = protocol;
      cell.label = StrFormat("ablation_throughput/%s/%s",
                             GetAppInfo(app).abbrev, HumanCount(rate).c_str());
      cells.push_back(std::move(cell));
    }
  }

  const exec::SweepResult sweep =
      bench::RunDriverSweep(std::move(cells), "ablation_throughput", opts);

  size_t idx = 0;
  for (AppId app : apps) {
    for (double rate : rates) {
      const exec::SweepCellOutcome& outcome = sweep.cells[idx++];
      if (!outcome.result.ok()) {
        table.AddRow({GetAppInfo(app).abbrev, HumanCount(rate), "n/a", "n/a",
                      "n/a", "n/a"});
        continue;
      }
      const CellResult& r = *outcome.result;
      double hottest = 0.0;
      for (const OperatorRunStats& s : r.op_stats) {
        hottest = std::max(hottest, s.max_instance_util);
      }
      table.AddRow({GetAppInfo(app).abbrev, HumanCount(rate),
                    ThroughputCell(r.mean_throughput_tps),
                    LatencyCell(r.mean_median_latency_s),
                    StrFormat("%lld",
                              static_cast<long long>(r.backpressure_skipped)),
                    StrFormat("%.2f", hottest)});
    }
  }
  table.Print();
  (void)table.WriteCsv("results/ablation_throughput.csv");
  return bench::SweepExitCode(sweep);
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
