#include "src/common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace pdsp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad degree");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad degree");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad degree");
}

TEST(StatusTest, AllCodesRoundTripThroughToString) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 1000u);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  PDSP_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PDSP_ASSIGN_OR_RETURN(int h, Half(x));
  PDSP_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(helpers::Caller(1).ok());
  EXPECT_TRUE(helpers::Caller(-1).IsInvalidArgument());
}

TEST(StatusMacrosTest, AssignOrReturnChains) {
  auto ok = helpers::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(helpers::Quarter(6).status().IsInvalidArgument());
}

}  // namespace
}  // namespace pdsp
