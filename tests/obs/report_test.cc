#include "src/obs/report.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/string_util.h"
#include "src/obs/ledger.h"
#include "src/obs/prof.h"

namespace pdsp {
namespace obs {
namespace {

std::string TempPath(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/pdsp_report_test";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + name;
  std::filesystem::remove(path);
  return path;
}

RunRecord MakeRecord(const std::string& label, int parallelism,
                     double throughput, double p50) {
  RunRecord rec;
  rec.run_id = MakeRunId(label);
  rec.timestamp_utc = "2026-08-08T00:00:00Z";
  rec.label = label;
  rec.plan_hash = "00000000deadbeef";
  rec.parallelism = parallelism;
  rec.event_rate = 1000.0;
  rec.cluster = "m510";
  rec.seed = "7";
  rec.throughput_tps = throughput;
  rec.median_latency_s = p50;
  rec.p95_latency_s = p50 * 2;
  rec.p99_latency_s = p50 * 3;
  rec.breakdown_source_batch_s = p50 * 0.2;
  rec.breakdown_queue_s = p50 * 0.3;
  rec.breakdown_service_s = p50 * 0.5;
  rec.host_wall_s = 1.0;
  return rec;
}

std::vector<RunRecord> TwoAppLedger() {
  std::vector<RunRecord> records;
  for (int p : {2, 4, 8}) {
    records.push_back(
        MakeRecord(StrFormat("WC/p%d", p), p, 1000.0 * p, 0.010 / p));
    records.push_back(
        MakeRecord(StrFormat("linear/p%d", p), p, 800.0 * p, 0.020 / p));
  }
  return records;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(AppOfLabelTest, TakesThePrefixUpToTheFirstSlash) {
  EXPECT_EQ(AppOfLabel("WC/p4"), "WC");
  EXPECT_EQ(AppOfLabel("fig3/linear/XS"), "fig3");
  EXPECT_EQ(AppOfLabel("linear"), "linear");
  EXPECT_EQ(AppOfLabel(""), "");
}

TEST(IsSummaryLabelTest, MatchesSweepSummariesOnly) {
  EXPECT_TRUE(IsSummaryLabel("sweep"));
  EXPECT_TRUE(IsSummaryLabel("sweep/fig3_synthetic"));
  EXPECT_FALSE(IsSummaryLabel("sweeper/x"));
  EXPECT_FALSE(IsSummaryLabel("WC/p4"));
}

TEST(LoadRecordsForReportTest, LoadsLedgerSingleRecordAndDirectory) {
  // JSONL ledger.
  const std::string dir = ::testing::TempDir() + "/pdsp_report_test/bundle";
  std::filesystem::create_directories(dir);
  const std::string ledger_path = dir + "/ledger.jsonl";
  std::filesystem::remove(ledger_path);
  RunLedger ledger(ledger_path);
  ASSERT_TRUE(ledger.Append(MakeRecord("WC/p2", 2, 1000, 0.01)).ok());
  ASSERT_TRUE(ledger.Append(MakeRecord("WC/p4", 4, 2000, 0.005)).ok());
  auto from_ledger = LoadRecordsForReport(ledger_path);
  ASSERT_TRUE(from_ledger.ok());
  EXPECT_EQ(from_ledger->size(), 2u);

  // Directory: resolves to <dir>/ledger.jsonl.
  auto from_dir = LoadRecordsForReport(dir);
  ASSERT_TRUE(from_dir.ok());
  EXPECT_EQ(from_dir->size(), 2u);

  // Single-record baseline file (bench/baselines layout).
  const std::string baseline = TempPath("baseline.json");
  ASSERT_TRUE(WriteTextFileAtomic(
                  baseline, MakeRecord("WC/p8", 8, 4000, 0.002).ToJson().Dump(2))
                  .ok());
  auto from_file = LoadRecordsForReport(baseline);
  ASSERT_TRUE(from_file.ok());
  ASSERT_EQ(from_file->size(), 1u);
  EXPECT_EQ((*from_file)[0].label, "WC/p8");

  EXPECT_FALSE(LoadRecordsForReport(TempPath("absent.jsonl")).ok());
}

TEST(GenerateReportTest, EmitsOneSvgPerChartAndAMarkerComment) {
  ReportOptions options;
  auto report = GenerateReport(TwoAppLedger(), options);
  ASSERT_TRUE(report.ok());

  EXPECT_EQ(report->stats.records, 6u);
  EXPECT_EQ(report->stats.apps, 2u);
  // 3 charts per app (throughput, percentiles, breakdown) + 1 heatmap.
  EXPECT_EQ(report->stats.charts, 7u);
  EXPECT_EQ(CountOccurrences(report->html, "<svg"), report->stats.charts);
  EXPECT_NE(report->html.find(StrFormat(
                "<!-- pdsp-report charts=%zu records=%zu apps=%zu -->",
                report->stats.charts, report->stats.records,
                report->stats.apps)),
            std::string::npos);
  EXPECT_NE(report->html.find("WC"), std::string::npos);
  EXPECT_NE(report->html.find("linear"), std::string::npos);
}

TEST(GenerateReportTest, NonFiniteMetricsNeverLeakNanLiterals) {
  std::vector<RunRecord> records = TwoAppLedger();
  records[0].median_latency_s = std::nan("");
  records[1].throughput_tps = std::numeric_limits<double>::infinity();
  records[2].p95_latency_s = -std::numeric_limits<double>::infinity();
  auto report = GenerateReport(records, ReportOptions());
  ASSERT_TRUE(report.ok());
  std::string lower = report->html;
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  EXPECT_EQ(lower.find("nan"), std::string::npos);
  EXPECT_EQ(lower.find("inf<"), std::string::npos);
}

TEST(GenerateReportTest, SummaryRecordsAreListedWithTheirMonitorCodes) {
  std::vector<RunRecord> records = TwoAppLedger();
  RunRecord summary = MakeRecord("sweep/unit", 4, 0.0, 0.0);
  summary.diagnosis_codes = {"PDSP-M201", "PDSP-M203"};
  records.push_back(summary);

  auto report = GenerateReport(records, ReportOptions());
  ASSERT_TRUE(report.ok());
  // Summaries are listed, not charted: measurement count excludes them.
  EXPECT_EQ(report->stats.records, 6u);
  EXPECT_NE(report->html.find("PDSP-M201"), std::string::npos);
  EXPECT_NE(report->html.find("PDSP-M203"), std::string::npos);
}

TEST(GenerateReportTest, AppFilterAndLimitShrinkTheReport) {
  ReportOptions options;
  options.app_filter = "WC";
  auto report = GenerateReport(TwoAppLedger(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->stats.apps, 1u);
  EXPECT_EQ(report->stats.records, 3u);

  options.limit = 1;
  auto limited = GenerateReport(TwoAppLedger(), options);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->stats.records, 1u);

  options.app_filter = "no-such-app";
  EXPECT_FALSE(GenerateReport(TwoAppLedger(), options).ok());
}

TEST(GenerateReportTest, EmptyRecordSetFails) {
  EXPECT_FALSE(GenerateReport({}, ReportOptions()).ok());
}

TEST(GenerateReportTest, CompareSectionMatchesLabelsAgainstBaseline) {
  const std::string baseline_path = TempPath("against.jsonl");
  RunLedger baseline(baseline_path);
  for (const RunRecord& rec : TwoAppLedger()) {
    ASSERT_TRUE(baseline.Append(rec).ok());
  }
  ReportOptions options;
  options.against_path = baseline_path;
  auto report = GenerateReport(TwoAppLedger(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->stats.compared, 6u);
  EXPECT_NE(report->html.find("unchanged"), std::string::npos);
}

TEST(WriteReportFileTest, EndToEndLedgerToHtmlOnDisk) {
  const std::string ledger_path = TempPath("e2e.jsonl");
  RunLedger ledger(ledger_path);
  for (const RunRecord& rec : TwoAppLedger()) {
    ASSERT_TRUE(ledger.Append(rec).ok());
  }
  const std::string out = TempPath("report.html");
  auto stats = WriteReportFile(ledger_path, out, ReportOptions());
  ASSERT_TRUE(stats.ok());
  auto html = ReadTextFile(out);
  ASSERT_TRUE(html.ok());
  EXPECT_EQ(CountOccurrences(*html, "<svg"), stats->charts);
  EXPECT_NE(html->find("</html>"), std::string::npos);
}

TEST(GenerateReportTest, ProfiledBundlesGetFlameGraphAndCpuTable) {
  const std::string dir =
      ::testing::TempDir() + "/pdsp_report_test/prof_bundle";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  prof::CpuProfile profile;
  profile.hz = 97.0;
  profile.duration_s = 1.0;
  profile.total_cpu_s = 1.0;
  profile.samples = 97;
  profile.folded = {
      {"phase:simulate;app:WC;op:count<script>alert(1)</script>", 97, 1.0}};
  profile.operators = {{"count<script>alert(1)</script>", 97, 1.0}};
  profile.phases = {{"simulate", 97, 1.0}};
  ASSERT_TRUE(
      WriteTextFileAtomic(dir + "/profile.json", profile.ToJson().Dump(2))
          .ok());

  std::vector<RunRecord> records = TwoAppLedger();
  records.back().artifact_dir = dir;  // one profiled cell
  auto report = GenerateReport(records, ReportOptions());
  ASSERT_TRUE(report.ok());
  // 7 base charts + 1 flame graph, and the marker still equals <svg> count.
  EXPECT_EQ(report->stats.charts, 8u);
  EXPECT_EQ(CountOccurrences(report->html, "<svg"), report->stats.charts);
  EXPECT_NE(report->html.find("CPU flame graph"), std::string::npos);
  EXPECT_NE(report->html.find("CPU vs virtual time"), std::string::npos);
  // Hostile operator names from profile.json never reach the HTML raw.
  EXPECT_EQ(report->html.find("<script>"), std::string::npos);
  EXPECT_NE(report->html.find("&lt;script&gt;"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace pdsp
